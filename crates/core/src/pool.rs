//! Hand-rolled dynamic thread pool.
//!
//! The paper parallelises the CPU scan with "a thread pool [where] each
//! core fetches a task … defined dynamically in order to improve load
//! balancing", keeping scores thread-local and reducing at the end
//! (§IV-A). This module is that scheme: a shared atomic task cursor,
//! scoped worker threads, per-worker state, and a final collection — no
//! locks in the steady state.
//!
//! Two claiming granularities are provided:
//!
//! * [`run_dynamic`] — the original per-task (or fixed-chunk) cursor;
//! * [`run_claims`] over a [`plan_claims`] plan — **run-aware** claiming:
//!   the caller groups the task sequence into *runs* of tasks that share
//!   cacheable state (the `(b0, b1)` block pair of the blocked V5 kernel,
//!   the contiguous rank span of a shard batch) and workers claim whole
//!   runs, so per-worker LRU caches stay hot instead of collapsing the
//!   moment a second worker appears. Oversized runs are tail-split for
//!   balance; the claim plan is precomputed, so the steady state is still
//!   a single `fetch_add` per claim.
//!
//! The higher-level drivers in [`crate::scan`] can also run on Rayon; the
//! benches compare both (the pool is the closer analogue of the paper's
//! OpenMP `schedule(dynamic)`).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolve a thread-count request: `0` means "all available cores", and
/// any explicit request is clamped to the host's available parallelism —
/// a CPU-bound scan gains nothing from oversubscription, and silently
/// spawning 512 workers on an 8-core box only costs memory and context
/// switches. (The scheduler *benchmark* deliberately bypasses this via
/// [`run_claims`]' exact worker count to measure claiming locality under
/// contention.)
pub fn resolve_threads(requested: usize) -> usize {
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if requested > 0 {
        requested.min(avail)
    } else {
        avail
    }
}

/// A contiguous claim of tasks `[start, end)` — the unit workers fetch
/// under run-aware claiming.
pub type Claim = (usize, usize);

/// The balance cap of run-aware claiming: the largest claim (in tasks)
/// a plan over `total` tasks and `workers` workers may hand out — half a
/// worker's fair share. Shared by [`plan_claims`], the epi-server
/// engine's shard batching, and the analytic parallel model, so the
/// three stay in lockstep by construction.
pub fn balance_cap(total: usize, workers: usize) -> usize {
    total.div_ceil(2 * workers.max(1)).max(1)
}

/// Group a task sequence into claims along its *run* structure.
///
/// `run_lens` are the lengths of consecutive task runs (tasks inside one
/// run share per-worker cacheable state; their order is preserved). Every
/// run becomes one claim, except runs longer than the [`balance_cap`]
/// `⌈total / 2·workers⌉`, which are tail-split into cap-sized pieces so no
/// single claim can hold more than half a worker's fair share hostage at
/// the end of the scan. Splitting costs at most one extra cache refill
/// per piece, so the cap trades a bounded locality loss for bounded
/// imbalance.
pub fn plan_claims(run_lens: &[usize], workers: usize) -> Vec<Claim> {
    let total: usize = run_lens.iter().sum();
    let cap = balance_cap(total, workers);
    let mut claims = Vec::with_capacity(run_lens.len());
    let mut start = 0usize;
    for &len in run_lens {
        let end = start + len;
        let mut s = start;
        while end - s > cap {
            claims.push((s, s + cap));
            s += cap;
        }
        if s < end {
            claims.push((s, end));
        }
        start = end;
    }
    claims
}

/// Run a precomputed claim plan over exactly `workers` workers (bounded
/// by the claim count), with dynamic self-scheduling at claim
/// granularity: workers `fetch_add` a claim index and process that
/// claim's tasks in order, keeping per-worker state across claims.
///
/// The worker count is honored exactly — no host clamping — because this
/// is the primitive the scheduler-locality benchmark oversubscribes on
/// purpose; callers that accept user input resolve through
/// [`resolve_threads`] first.
pub fn run_claims<S, MS, T>(claims: &[Claim], workers: usize, make_state: MS, task: T) -> Vec<S>
where
    S: Send,
    MS: Fn() -> S + Sync,
    T: Fn(usize, &mut S) + Sync,
{
    run_claim_fn(claims.len(), &|c| claims[c], workers, make_state, task)
}

/// [`run_claims`] over the chunk-1 plan (every task its own claim),
/// generated lazily — the baseline the run-aware planner is measured
/// against, and the degenerate plan for task sequences with no run
/// structure. Allocation-free, so the baseline scales to panels whose
/// task count would make a materialized claim vector prohibitive.
pub fn run_unit_claims<S, MS, T>(n_tasks: usize, workers: usize, make_state: MS, task: T) -> Vec<S>
where
    S: Send,
    MS: Fn() -> S + Sync,
    T: Fn(usize, &mut S) + Sync,
{
    run_claim_fn(n_tasks, &|i| (i, i + 1), workers, make_state, task)
}

/// The shared self-scheduling driver: `n_claims` claims produced on
/// demand by `claim(index)`, drained by exactly `workers` scoped workers
/// through one atomic cursor.
fn run_claim_fn<S, MS, T>(
    n_claims: usize,
    claim: &(impl Fn(usize) -> Claim + Sync),
    workers: usize,
    make_state: MS,
    task: T,
) -> Vec<S>
where
    S: Send,
    MS: Fn() -> S + Sync,
    T: Fn(usize, &mut S) + Sync,
{
    let threads = workers.max(1).min(n_claims.max(1));
    let cursor = AtomicUsize::new(0);
    let mut states: Vec<Option<S>> = Vec::new();
    states.resize_with(threads, || None);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let cursor = &cursor;
            let make_state = &make_state;
            let task = &task;
            handles.push(scope.spawn(move || {
                let mut state = make_state();
                loop {
                    let c = cursor.fetch_add(1, Ordering::Relaxed);
                    if c >= n_claims {
                        break;
                    }
                    let (start, end) = claim(c);
                    for idx in start..end {
                        task(idx, &mut state);
                    }
                }
                state
            }));
        }
        for (slot, handle) in states.iter_mut().zip(handles) {
            *slot = Some(handle.join().expect("worker thread panicked"));
        }
    });

    states.into_iter().flatten().collect()
}

/// Aggregated per-worker cache statistics of one parallel scan: one
/// `(hits, misses)` pair per worker, summed and min/maxed so gates can
/// judge the *whole pool* instead of whichever worker happened to be
/// index 0.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PoolCacheStats {
    /// `(hits, misses)` per worker, in worker order.
    pub per_worker: Vec<(u64, u64)>,
}

impl PoolCacheStats {
    /// Total hits across all workers.
    pub fn hits(&self) -> u64 {
        self.per_worker.iter().map(|&(h, _)| h).sum()
    }

    /// Total misses across all workers.
    pub fn misses(&self) -> u64 {
        self.per_worker.iter().map(|&(_, m)| m).sum()
    }

    /// Pool-wide `hits / (hits + misses)`, or 0 before any call.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits() + self.misses();
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 / total as f64
        }
    }

    /// Lowest per-worker hit rate (workers that made no calls excluded);
    /// 0 when no worker made a call.
    pub fn min_hit_rate(&self) -> f64 {
        self.worker_rates().reduce(f64::min).unwrap_or(0.0)
    }

    /// Highest per-worker hit rate (workers that made no calls excluded).
    pub fn max_hit_rate(&self) -> f64 {
        self.worker_rates().reduce(f64::max).unwrap_or(0.0)
    }

    fn worker_rates(&self) -> impl Iterator<Item = f64> + '_ {
        self.per_worker
            .iter()
            .filter(|&&(h, m)| h + m > 0)
            .map(|&(h, m)| h as f64 / (h + m) as f64)
    }
}

/// Run `n_tasks` tasks over `threads` workers with dynamic self-scheduling
/// in chunks of `chunk` tasks, returning every worker's final state.
///
/// * `make_state` creates the thread-local state (e.g. a `TopK`);
/// * `task(idx, state)` processes task `idx`.
///
/// Tasks are claimed with a single `fetch_add` per chunk; larger chunks
/// amortise contention for very cheap tasks, `chunk = 1` maximises balance
/// for expensive ones.
pub fn run_dynamic<S, MS, T>(
    n_tasks: usize,
    threads: usize,
    chunk: usize,
    make_state: MS,
    task: T,
) -> Vec<S>
where
    S: Send,
    MS: Fn() -> S + Sync,
    T: Fn(usize, &mut S) + Sync,
{
    let threads = resolve_threads(threads).min(n_tasks.max(1));
    let chunk = chunk.max(1);
    let n_claims = n_tasks.div_ceil(chunk);
    run_claim_fn(
        n_claims,
        &|c| (c * chunk, (c * chunk + chunk).min(n_tasks)),
        threads,
        make_state,
        task,
    )
}

/// Run `n_tasks` over `threads` workers with a *static* even split
/// (contiguous ranges). Provided as the ablation counterpart of
/// [`run_dynamic`] — the paper chose dynamic scheduling precisely because
/// triangular triple enumeration makes static splits imbalanced.
pub fn run_static<S, MS, T>(n_tasks: usize, threads: usize, make_state: MS, task: T) -> Vec<S>
where
    S: Send,
    MS: Fn() -> S + Sync,
    T: Fn(usize, &mut S) + Sync,
{
    let threads = resolve_threads(threads).min(n_tasks.max(1));
    let per = n_tasks.div_ceil(threads);
    let mut states: Vec<Option<S>> = Vec::new();
    states.resize_with(threads, || None);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let make_state = &make_state;
            let task = &task;
            handles.push(scope.spawn(move || {
                let mut state = make_state();
                let start = t * per;
                let end = ((t + 1) * per).min(n_tasks);
                for idx in start..end {
                    task(idx, &mut state);
                }
                state
            }));
        }
        for (slot, handle) in states.iter_mut().zip(handles) {
            *slot = Some(handle.join().expect("worker thread panicked"));
        }
    });

    states.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn dynamic_processes_every_task_exactly_once() {
        let n = 1000;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let states = run_dynamic(
            n,
            4,
            7,
            || 0u64,
            |idx, count| {
                hits[idx].fetch_add(1, Ordering::Relaxed);
                *count += 1;
            },
        );
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert_eq!(states.iter().sum::<u64>(), n as u64);
    }

    #[test]
    fn static_processes_every_task_exactly_once() {
        let n = 103;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let states = run_static(
            n,
            5,
            || 0u64,
            |idx, count| {
                hits[idx].fetch_add(1, Ordering::Relaxed);
                *count += 1;
            },
        );
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert_eq!(states.iter().sum::<u64>(), n as u64);
    }

    #[test]
    fn sum_reduction_matches_serial() {
        let n = 500usize;
        let want: u64 = (0..n as u64).sum();
        for threads in [1, 2, 8] {
            let states = run_dynamic(n, threads, 3, || 0u64, |idx, acc| *acc += idx as u64);
            assert_eq!(states.iter().sum::<u64>(), want);
        }
    }

    #[test]
    fn zero_tasks_is_fine() {
        let states = run_dynamic(0, 4, 1, || 1u32, |_, _| unreachable!());
        assert!(states.len() <= 1);
    }

    #[test]
    fn more_threads_than_tasks_is_clamped() {
        let states = run_dynamic(2, 64, 1, || 0u32, |_, c| *c += 1);
        assert!(states.len() <= 2);
        assert_eq!(states.iter().sum::<u32>(), 2);
    }

    #[test]
    fn resolve_threads_zero_means_all_and_requests_are_clamped() {
        let avail = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(resolve_threads(0), avail);
        assert_eq!(resolve_threads(1), 1);
        // silent oversubscription is clamped to the host's parallelism
        assert_eq!(resolve_threads(3), 3.min(avail));
        assert_eq!(resolve_threads(10_000), avail);
    }

    #[test]
    fn plan_claims_preserves_runs_and_tiles_the_range() {
        // 3 runs over 10 tasks, 2 workers: cap = ceil(10/4) = 3, so the
        // 6-run tail-splits into 3+3 and the small runs stay whole.
        let claims = plan_claims(&[6, 3, 1], 2);
        assert_eq!(claims, vec![(0, 3), (3, 6), (6, 9), (9, 10)]);
        // one worker: cap = 5 -> the 6-run splits once, nothing else
        assert_eq!(
            plan_claims(&[6, 3, 1], 1),
            vec![(0, 5), (5, 6), (6, 9), (9, 10)]
        );
        // claims always tile [0, total) exactly, whatever the shape
        for (runs, workers) in [
            (vec![1usize; 17], 4usize),
            (vec![100], 4),
            (vec![5, 4, 3, 2, 1], 3),
            (vec![0, 7, 0, 2], 2),
            (vec![], 2),
        ] {
            let total: usize = runs.iter().sum();
            let claims = plan_claims(&runs, workers);
            let mut next = 0usize;
            for &(s, e) in &claims {
                assert_eq!(s, next, "runs={runs:?} workers={workers}");
                assert!(e > s);
                next = e;
            }
            assert_eq!(next, total);
        }
    }

    #[test]
    fn plan_claims_without_splits_is_one_claim_per_run() {
        // runs all below the cap: exactly one claim per nonempty run, so
        // an LRU-of-one per-worker cache misses once per claim
        let runs = vec![5usize, 4, 3, 2, 1];
        let claims = plan_claims(&runs, 1); // cap = 8 > every run
        assert_eq!(claims.len(), runs.len());
    }

    #[test]
    fn run_claims_processes_every_task_exactly_once() {
        let runs = vec![7usize, 1, 12, 3, 3];
        let n: usize = runs.iter().sum();
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        for workers in [1usize, 2, 5] {
            hits.iter().for_each(|h| h.store(0, Ordering::Relaxed));
            let claims = plan_claims(&runs, workers);
            let states = run_claims(
                &claims,
                workers,
                || 0u64,
                |idx, count| {
                    hits[idx].fetch_add(1, Ordering::Relaxed);
                    *count += 1;
                },
            );
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
            assert_eq!(states.iter().sum::<u64>(), n as u64);
            assert!(states.len() <= workers.max(1));
        }
        // empty plan: no panic, at most one (unused) state
        assert!(run_claims(&[], 4, || 0u32, |_, _| unreachable!()).len() <= 1);
    }

    #[test]
    fn run_claims_keeps_runs_on_one_worker() {
        // With claims = whole runs, every task of a run lands on the same
        // worker *consecutively*: an LRU-of-one keyed by run id must miss
        // exactly once per claim, whatever the worker count.
        let runs = vec![5usize, 4, 3, 2, 1];
        let mut run_of_task = Vec::new();
        for (rid, &len) in runs.iter().enumerate() {
            run_of_task.extend(std::iter::repeat_n(rid, len));
        }
        for workers in [1usize, 2, 3, 7] {
            let claims = plan_claims(&runs, workers);
            let states = run_claims(
                &claims,
                workers,
                || (None::<usize>, 0u64, 0u64), // (last run, hits, misses)
                |idx, (last, hits, misses)| {
                    if *last == Some(run_of_task[idx]) {
                        *hits += 1;
                    } else {
                        *misses += 1;
                    }
                    *last = Some(run_of_task[idx]);
                },
            );
            let misses: u64 = states.iter().map(|&(_, _, m)| m).sum();
            let hits: u64 = states.iter().map(|&(_, h, _)| h).sum();
            assert_eq!(hits + misses, 15, "workers={workers}");
            assert!(
                misses <= claims.len() as u64,
                "workers={workers}: {misses} misses > {} claims",
                claims.len()
            );
        }
    }

    #[test]
    fn pool_cache_stats_aggregate() {
        let stats = PoolCacheStats {
            per_worker: vec![(9, 1), (0, 0), (1, 4)],
        };
        assert_eq!(stats.hits(), 10);
        assert_eq!(stats.misses(), 5);
        assert!((stats.hit_rate() - 10.0 / 15.0).abs() < 1e-12);
        assert!((stats.min_hit_rate() - 0.2).abs() < 1e-12);
        assert!((stats.max_hit_rate() - 0.9).abs() < 1e-12);
        let empty = PoolCacheStats::default();
        assert_eq!(empty.hit_rate(), 0.0);
        assert_eq!(empty.min_hit_rate(), 0.0);
        assert_eq!(empty.max_hit_rate(), 0.0);
    }
}
