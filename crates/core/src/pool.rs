//! Hand-rolled dynamic thread pool.
//!
//! The paper parallelises the CPU scan with "a thread pool [where] each
//! core fetches a task … defined dynamically in order to improve load
//! balancing", keeping scores thread-local and reducing at the end
//! (§IV-A). This module is that scheme: a shared atomic task cursor,
//! scoped worker threads, per-worker state, and a final collection — no
//! locks in the steady state.
//!
//! The higher-level drivers in [`crate::scan`] can also run on Rayon; the
//! benches compare both (the pool is the closer analogue of the paper's
//! OpenMP `schedule(dynamic)`).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolve a thread-count request: `0` means "all available cores".
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Run `n_tasks` tasks over `threads` workers with dynamic self-scheduling
/// in chunks of `chunk` tasks, returning every worker's final state.
///
/// * `make_state` creates the thread-local state (e.g. a `TopK`);
/// * `task(idx, state)` processes task `idx`.
///
/// Tasks are claimed with a single `fetch_add` per chunk; larger chunks
/// amortise contention for very cheap tasks, `chunk = 1` maximises balance
/// for expensive ones.
pub fn run_dynamic<S, MS, T>(
    n_tasks: usize,
    threads: usize,
    chunk: usize,
    make_state: MS,
    task: T,
) -> Vec<S>
where
    S: Send,
    MS: Fn() -> S + Sync,
    T: Fn(usize, &mut S) + Sync,
{
    let threads = resolve_threads(threads).min(n_tasks.max(1));
    let chunk = chunk.max(1);
    let cursor = AtomicUsize::new(0);
    let mut states: Vec<Option<S>> = Vec::new();
    states.resize_with(threads, || None);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let cursor = &cursor;
            let make_state = &make_state;
            let task = &task;
            handles.push(scope.spawn(move || {
                let mut state = make_state();
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n_tasks {
                        break;
                    }
                    let end = (start + chunk).min(n_tasks);
                    for idx in start..end {
                        task(idx, &mut state);
                    }
                }
                state
            }));
        }
        for (slot, handle) in states.iter_mut().zip(handles) {
            *slot = Some(handle.join().expect("worker thread panicked"));
        }
    });

    states.into_iter().flatten().collect()
}

/// Run `n_tasks` over `threads` workers with a *static* even split
/// (contiguous ranges). Provided as the ablation counterpart of
/// [`run_dynamic`] — the paper chose dynamic scheduling precisely because
/// triangular triple enumeration makes static splits imbalanced.
pub fn run_static<S, MS, T>(n_tasks: usize, threads: usize, make_state: MS, task: T) -> Vec<S>
where
    S: Send,
    MS: Fn() -> S + Sync,
    T: Fn(usize, &mut S) + Sync,
{
    let threads = resolve_threads(threads).min(n_tasks.max(1));
    let per = n_tasks.div_ceil(threads);
    let mut states: Vec<Option<S>> = Vec::new();
    states.resize_with(threads, || None);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let make_state = &make_state;
            let task = &task;
            handles.push(scope.spawn(move || {
                let mut state = make_state();
                let start = t * per;
                let end = ((t + 1) * per).min(n_tasks);
                for idx in start..end {
                    task(idx, &mut state);
                }
                state
            }));
        }
        for (slot, handle) in states.iter_mut().zip(handles) {
            *slot = Some(handle.join().expect("worker thread panicked"));
        }
    });

    states.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn dynamic_processes_every_task_exactly_once() {
        let n = 1000;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let states = run_dynamic(
            n,
            4,
            7,
            || 0u64,
            |idx, count| {
                hits[idx].fetch_add(1, Ordering::Relaxed);
                *count += 1;
            },
        );
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert_eq!(states.iter().sum::<u64>(), n as u64);
    }

    #[test]
    fn static_processes_every_task_exactly_once() {
        let n = 103;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let states = run_static(
            n,
            5,
            || 0u64,
            |idx, count| {
                hits[idx].fetch_add(1, Ordering::Relaxed);
                *count += 1;
            },
        );
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert_eq!(states.iter().sum::<u64>(), n as u64);
    }

    #[test]
    fn sum_reduction_matches_serial() {
        let n = 500usize;
        let want: u64 = (0..n as u64).sum();
        for threads in [1, 2, 8] {
            let states = run_dynamic(n, threads, 3, || 0u64, |idx, acc| *acc += idx as u64);
            assert_eq!(states.iter().sum::<u64>(), want);
        }
    }

    #[test]
    fn zero_tasks_is_fine() {
        let states = run_dynamic(0, 4, 1, || 1u32, |_, _| unreachable!());
        assert!(states.len() <= 1);
    }

    #[test]
    fn more_threads_than_tasks_is_clamped() {
        let states = run_dynamic(2, 64, 1, || 0u32, |_, c| *c += 1);
        assert!(states.len() <= 2);
        assert_eq!(states.iter().sum::<u32>(), 2);
    }

    #[test]
    fn resolve_threads_zero_means_all() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }
}
