//! Permutation-based significance testing.
//!
//! An exhaustive scan always returns *some* lowest-K2 triple; GWAS
//! practice asks whether that score is lower than expected under the null
//! hypothesis of no genotype–phenotype association. The standard answer
//! is phenotype permutation: re-run the scan on label-shuffled copies and
//! compare the observed best score against the null distribution of best
//! scores. Because each permutation is itself a full exhaustive scan,
//! this is exactly the workload the paper accelerates — significance
//! testing multiplies the value of a fast kernel.

use crate::result::Candidate;
use crate::scan::{scan, ScanConfig};
use bitgenome::{GenotypeMatrix, Phenotype};

/// Result of a permutation test.
#[derive(Clone, Debug)]
pub struct SignificanceResult {
    /// Best candidate on the observed phenotype.
    pub observed: Candidate,
    /// Best score of each permuted replicate.
    pub null_scores: Vec<f64>,
    /// Permutation p-value with the standard +1 correction:
    /// `(1 + #{null ≤ observed}) / (1 + P)`.
    pub p_value: f64,
}

/// Deterministic SplitMix64 stream (keeps `epi-core` free of external
/// RNG dependencies; quality is ample for label shuffling).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform index in `0..=bound` (rejection-free modulo is fine here).
    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }
}

/// Fisher–Yates permutation of `0..n` drawn from `rng`: the exact index
/// mapping one shuffle replicate applies to the labels.
fn permutation_with(n: usize, rng: &mut SplitMix64) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        perm.swap(i, rng.below(i + 1));
    }
    perm
}

/// The seeded Fisher–Yates permutation of `0..n` that the significance
/// test's *first* replicate applies to the phenotype labels (replicate
/// `k` continues the same SplitMix64 stream). Exposed so callers can
/// reproduce, audit, or reuse the exact shuffles a test ran: the result
/// is a bijection on `0..n`, fully determined by `(n, seed)`.
pub fn seeded_permutation(n: usize, seed: u64) -> Vec<usize> {
    permutation_with(n, &mut SplitMix64(seed))
}

/// Phenotype with labels shuffled by one permutation drawn from `rng`.
fn permuted_phenotype(p: &Phenotype, rng: &mut SplitMix64) -> Phenotype {
    let labels = p.labels();
    let perm = permutation_with(labels.len(), rng);
    Phenotype::from_labels(perm.iter().map(|&i| labels[i]).collect())
}

/// Run a permutation test: one observed scan plus `permutations`
/// label-shuffled scans with the same configuration.
///
/// # Panics
/// Panics if the observed scan returns no candidates (fewer than 3 SNPs).
pub fn significance_test(
    genotypes: &GenotypeMatrix,
    phenotype: &Phenotype,
    cfg: &ScanConfig,
    permutations: usize,
    seed: u64,
) -> SignificanceResult {
    let observed = scan(genotypes, phenotype, cfg)
        .best()
        .expect("scan produced no candidates");
    let mut rng = SplitMix64(seed);
    let mut null_scores = Vec::with_capacity(permutations);
    for _ in 0..permutations {
        let shuffled = permuted_phenotype(phenotype, &mut rng);
        let best = scan(genotypes, &shuffled, cfg)
            .best()
            .expect("permuted scan produced no candidates");
        null_scores.push(best.score);
    }
    let at_least_as_good = null_scores.iter().filter(|&&s| s <= observed.score).count();
    let p_value = (1 + at_least_as_good) as f64 / (1 + permutations) as f64;
    SignificanceResult {
        observed,
        null_scores,
        p_value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::Version;

    fn noise(m: usize, n: usize, seed: u64) -> (GenotypeMatrix, Phenotype) {
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            s >> 33
        };
        let data: Vec<u8> = (0..m * n).map(|_| (next() % 3) as u8).collect();
        let labels: Vec<u8> = (0..n).map(|_| (next() % 2) as u8).collect();
        (
            GenotypeMatrix::from_raw(m, n, data),
            Phenotype::from_labels(labels),
        )
    }

    /// Strongly associated dataset: phenotype determined by three SNPs.
    fn planted(m: usize, n: usize, seed: u64) -> (GenotypeMatrix, Phenotype) {
        let (g, _) = noise(m, n, seed);
        let labels: Vec<u8> = (0..n)
            .map(|j| {
                let risk = (0..3).filter(|&s| g.get(s, j) >= 1).count();
                u8::from(risk >= 3)
            })
            .collect();
        (g, Phenotype::from_labels(labels))
    }

    #[test]
    fn shuffle_preserves_class_sizes() {
        let (_, p) = noise(4, 101, 3);
        let mut rng = SplitMix64(1);
        let q = permuted_phenotype(&p, &mut rng);
        assert_eq!(q.num_cases(), p.num_cases());
        assert_eq!(q.num_controls(), p.num_controls());
        assert_ne!(q.labels(), p.labels());
    }

    #[test]
    fn seeded_permutation_is_deterministic_and_seed_sensitive() {
        let a = seeded_permutation(257, 0xBEEF);
        assert_eq!(a, seeded_permutation(257, 0xBEEF));
        assert_ne!(a, seeded_permutation(257, 0xBEF0));
        // degenerate sizes are well-defined
        assert!(seeded_permutation(0, 1).is_empty());
        assert_eq!(seeded_permutation(1, 1), vec![0]);
    }

    #[test]
    fn seeded_permutation_matches_the_first_shuffle_replicate() {
        // the public permutation IS the index map the first replicate
        // applies: labels[perm[i]] must equal the shuffled labels
        let (_, p) = noise(4, 83, 17);
        let seed = 0x5EED;
        let q = permuted_phenotype(&p, &mut SplitMix64(seed));
        let perm = seeded_permutation(p.labels().len(), seed);
        let applied: Vec<u8> = perm.iter().map(|&i| p.labels()[i]).collect();
        assert_eq!(applied, q.labels());
    }

    #[test]
    fn planted_signal_is_significant() {
        let (g, p) = planted(10, 400, 5);
        let cfg = ScanConfig::new(Version::V4);
        let res = significance_test(&g, &p, &cfg, 19, 42);
        assert_eq!(res.p_value, 1.0 / 20.0, "perfect signal beats all nulls");
        assert_eq!(res.null_scores.len(), 19);
    }

    #[test]
    fn noise_is_not_significant() {
        let (g, p) = noise(8, 200, 11);
        let cfg = ScanConfig::new(Version::V4);
        let res = significance_test(&g, &p, &cfg, 19, 7);
        assert!(
            res.p_value > 0.1,
            "pure noise should not look significant: p = {}",
            res.p_value
        );
    }

    #[test]
    fn deterministic_for_same_seed() {
        let (g, p) = noise(7, 120, 2);
        let cfg = ScanConfig::new(Version::V2);
        let a = significance_test(&g, &p, &cfg, 5, 99);
        let b = significance_test(&g, &p, &cfg, 5, 99);
        assert_eq!(a.null_scores, b.null_scores);
        assert_eq!(a.p_value, b.p_value);
    }
}
