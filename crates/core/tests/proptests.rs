//! Property-based invariants of the detection core.

use bitgenome::{GenotypeMatrix, Phenotype, SplitDataset, UnsplitDataset};
use epi_core::k2::{K2Scorer, LnFactTable, Objective};
use epi_core::result::TopK;
use epi_core::simd::{
    accumulate18, accumulate18_scalar, accumulate27, accumulate27_scalar, SimdLevel,
};
use epi_core::table27::{ContingencyTable, CELLS};
use epi_core::versions::{v1, v2, v5, BlockedScanner, V5Scratch};
use epi_core::{combin, shard, BlockParams};
use proptest::prelude::*;

fn labelled_strategy() -> impl Strategy<Value = (GenotypeMatrix, Phenotype)> {
    (3usize..=12, 10usize..=180).prop_flat_map(|(m, n)| {
        (
            prop::collection::vec(0u8..=2, m * n),
            prop::collection::vec(0u8..=1, n),
        )
            .prop_map(move |(geno, labels)| {
                (
                    GenotypeMatrix::from_raw(m, n, geno),
                    Phenotype::from_labels(labels),
                )
            })
    })
}

/// Smaller datasets for the k-way sweeps (`C(M, 4)` combos per case).
fn kway_strategy() -> impl Strategy<Value = (GenotypeMatrix, Phenotype)> {
    (4usize..=8, 10usize..=150).prop_flat_map(|(m, n)| {
        (
            prop::collection::vec(0u8..=2, m * n),
            prop::collection::vec(0u8..=1, n),
        )
            .prop_map(move |(geno, labels)| {
                (
                    GenotypeMatrix::from_raw(m, n, geno),
                    Phenotype::from_labels(labels),
                )
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn v1_v2_dense_tables_agree((g, p) in labelled_strategy()) {
        let unsplit = UnsplitDataset::encode(&g, &p);
        let split = SplitDataset::encode(&g, &p);
        let m = g.num_snps() as u32;
        for t in [(0u32, 1, 2), (0, m / 2, m - 1)] {
            if t.0 < t.1 && t.1 < t.2 {
                let dense = ContingencyTable::from_dense(
                    &g, &p, (t.0 as usize, t.1 as usize, t.2 as usize));
                prop_assert_eq!(&v1::table_for_triple(&unsplit, t), &dense);
                prop_assert_eq!(&v2::table_for_triple(&split, t), &dense);
            }
        }
    }

    #[test]
    fn simd_tiers_bitwise_identical(
        len in 0usize..40,
        seed in any::<u64>(),
    ) {
        let mut s = seed;
        let mut next = || { s = s.wrapping_mul(6364136223846793005).wrapping_add(1); s };
        let planes: Vec<Vec<u64>> =
            (0..6).map(|_| (0..len).map(|_| next()).collect()).collect();
        let view = (
            &planes[0][..], &planes[1][..], &planes[2][..],
            &planes[3][..], &planes[4][..], &planes[5][..],
        );
        let mut want = [0u32; CELLS];
        accumulate27_scalar(view, &mut want);
        for level in SimdLevel::available() {
            let mut got = [0u32; CELLS];
            accumulate27(level, view, &mut got);
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn v5_blocked_tables_match_v2(
        (g, p) in labelled_strategy(),
        bs in 1usize..=6,
        bp in prop::sample::select(vec![2usize, 64, 400]),
    ) {
        let ds = SplitDataset::encode(&g, &p);
        let scanner = BlockedScanner::new(&ds, BlockParams { bs, bp }, SimdLevel::Scalar);
        let mut scratch = V5Scratch::new();
        let mut seen = 0u64;
        for bt in scanner.tasks() {
            let mut failure = None;
            scanner.scan_block_triple_v5(bt, &mut scratch, &mut |t, ctrl, case| {
                seen += 1;
                let got = ContingencyTable::from_counts(*ctrl, *case);
                let want = v2::table_for_triple(&ds, t);
                if got != want && failure.is_none() {
                    failure = Some((t, got, want));
                }
            });
            if let Some((t, got, want)) = failure {
                prop_assert_eq!(got, want, "bs={} bp={} t={:?}", bs, bp, t);
            }
        }
        prop_assert_eq!(seen, combin::num_triples(g.num_snps()));
    }

    #[test]
    fn v5_pair_prefix_cache_matches_v2(
        (g, p) in labelled_strategy(),
    ) {
        let ds = SplitDataset::encode(&g, &p);
        let mut cache = v5::PairPrefixCache::new(SimdLevel::detect());
        for t in combin::TripleIter::new(g.num_snps()) {
            prop_assert_eq!(cache.table_for_triple(&ds, t), v2::table_for_triple(&ds, t));
        }
    }

    #[test]
    fn cross_triple_cache_matches_cold_across_shard_boundaries(
        (g, p) in labelled_strategy(),
        shards in 1u64..14,
    ) {
        // One warm cache carried across random rank-order shard
        // boundaries (hit and miss paths interleave arbitrarily with the
        // cuts) must produce tables bit-identical to a cold-built cache
        // and to the V2 reference, triple by triple.
        let ds = SplitDataset::encode(&g, &p);
        let m = g.num_snps();
        let plan = shard::ShardPlan::triples(m, shards);
        let mut warm = epi_core::prefixcache::PairPrefixCache::new(SimdLevel::detect());
        for r in plan.ranges() {
            for t in shard::TripleRangeIter::new(m, r) {
                let mut cold = epi_core::prefixcache::PairPrefixCache::new(SimdLevel::detect());
                let w = warm.table_for_triple(&ds, t);
                prop_assert_eq!(&w, &cold.table_for_triple(&ds, t), "t={:?}", t);
                prop_assert_eq!(&w, &v2::table_for_triple(&ds, t), "t={:?}", t);
            }
        }
        prop_assert_eq!(warm.hits() + warm.misses(), combin::num_triples(m));
    }

    #[test]
    fn cached_shard_scans_merge_bit_identical_to_monolithic(
        (g, p) in labelled_strategy(),
        shards in 1u64..10,
    ) {
        // The epi-server work loop: one worker drains all shards with a
        // persistent cache; the merged top-K must be bit-identical to a
        // monolithic V5 scan.
        let ds = SplitDataset::encode(&g, &p);
        let mut cfg = epi_core::scan::ScanConfig::new(epi_core::scan::Version::V5);
        cfg.top_k = 5;
        let mut cache = epi_core::prefixcache::PairPrefixCache::new(cfg.effective_simd());
        let plan = shard::ShardPlan::triples(g.num_snps(), shards);
        let mut merged = TopK::new(cfg.top_k);
        for r in plan.ranges() {
            merged.merge(shard::scan_shard_split_cached(&ds, &cfg, r, &mut cache));
        }
        let want = epi_core::scan::scan_split(&ds, &cfg).top;
        let got = merged.into_sorted();
        prop_assert_eq!(got.len(), want.len());
        for (a, b) in got.iter().zip(&want) {
            prop_assert_eq!(a.triple, b.triple);
            prop_assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }

    #[test]
    fn kway_unified_cache_matches_seed_tables(
        (g, p) in kway_strategy(),
        k in 2usize..=4,
    ) {
        // scan_kway's unified prefix cache against the seed recursive
        // prefix-AND kernel, every combination, orders 2-4.
        let ds = SplitDataset::encode(&g, &p);
        let m = g.num_snps();
        let mut cache = epi_core::prefixcache::PrefixCache::new(k, SimdLevel::detect());
        let mut mismatch = None;
        combin::for_each_combo(m, k, &mut |combo| {
            let got = cache.table_for_combo(&ds, combo);
            let want = epi_core::kway::table_for_combo(&ds, combo);
            if got != want && mismatch.is_none() {
                mismatch = Some(combo.to_vec());
            }
        });
        prop_assert_eq!(mismatch, None);
    }

    #[test]
    fn accumulate18_tiers_bitwise_identical(
        len in 0usize..40,
        seed in any::<u64>(),
    ) {
        let mut s = seed;
        let mut next = || { s = s.wrapping_mul(6364136223846793005).wrapping_add(1); s };
        let planes: Vec<Vec<u64>> =
            (0..4).map(|_| (0..len).map(|_| next()).collect()).collect();
        let z0: Vec<u64> = (0..len).map(|_| next()).collect();
        let z1: Vec<u64> = (0..len).map(|_| next()).collect();
        let mut pairs = vec![0u64; 9 * len];
        bitgenome::build_pair_streams(&planes[0], &planes[1], &planes[2], &planes[3], &mut pairs);
        let mut want = [0u32; CELLS];
        accumulate18_scalar(&pairs, &z0, &z1, &mut want);
        for level in SimdLevel::available() {
            let mut got = [0u32; CELLS];
            accumulate18(level, &pairs, &z0, &z1, &mut got);
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn k2_additivity_and_bounds(cells in prop::collection::vec(0u32..200, 54)) {
        let mut table = ContingencyTable::new();
        table.counts[0].copy_from_slice(&cells[..CELLS]);
        table.counts[1].copy_from_slice(&cells[CELLS..]);
        let scorer = K2Scorer::new(table.total() as usize + 2);
        let score = scorer.score(&table);
        prop_assert!(score.is_finite());
        // K2 >= sum_i ln(r_i + 1) >= 0 (each term is minimised by a pure
        // cell where one class holds everything)
        prop_assert!(score >= 0.0);
        // splitting any cell across classes can only increase the score
        // relative to the pure assignment with the same row totals
        let mut pure = ContingencyTable::new();
        for i in 0..CELLS {
            pure.counts[0][i] = cells[i] + cells[i + CELLS];
        }
        prop_assert!(scorer.score(&pure) <= score + 1e-9);
    }

    #[test]
    fn lnfact_is_monotone_and_superadditive(n in 1usize..500) {
        let t = LnFactTable::new(n + 2);
        prop_assert!(t.lnfact(n + 1) > t.lnfact(n));
        // ln((a+b)!) >= ln(a!) + ln(b!)
        let a = n / 2;
        let b = n - a;
        prop_assert!(t.lnfact(n) + 1e-12 >= t.lnfact(a) + t.lnfact(b));
    }

    #[test]
    fn topk_matches_full_sort(
        scores in prop::collection::vec(0.0f64..1000.0, 1..200),
        k in 1usize..20,
    ) {
        let mut top = TopK::new(k);
        for (i, &s) in scores.iter().enumerate() {
            top.push(s, (i as u32, i as u32 + 1, i as u32 + 2));
        }
        let got: Vec<f64> = top.into_sorted().iter().map(|c| c.score).collect();
        let mut want = scores.clone();
        want.sort_by(f64::total_cmp);
        want.truncate(k);
        prop_assert_eq!(got.len(), want.len());
        for (a, b) in got.iter().zip(&want) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn triple_enumeration_counts(m in 0usize..40) {
        prop_assert_eq!(
            combin::TripleIter::new(m).count() as u64,
            combin::num_triples(m)
        );
    }

    #[test]
    fn shard_plan_covers_every_rank_exactly_once(
        m in 3usize..40,
        s in 1u64..100,
    ) {
        let plan = shard::ShardPlan::triples(m, s);
        prop_assert_eq!(plan.num_shards(), s);
        prop_assert_eq!(plan.total_combos(), combin::num_triples(m));
        // contiguous tiling of [0, total): each rank in exactly one shard
        let mut next_rank = 0u64;
        for r in plan.ranges() {
            prop_assert_eq!(r.start, next_rank);
            prop_assert!(r.end >= r.start);
            next_rank = r.end;
        }
        prop_assert_eq!(next_rank, plan.total_combos());
        // and the shards' triples concatenate to the full enumeration
        let concatenated: Vec<_> = plan
            .ranges()
            .flat_map(|r| shard::TripleRangeIter::new(m, r))
            .collect();
        let full: Vec<_> = combin::TripleIter::new(m).collect();
        prop_assert_eq!(concatenated, full);
    }

    #[test]
    fn shard_plan_covers_every_pair_rank_exactly_once(
        m in 2usize..60,
        s in 1u64..50,
    ) {
        let plan = shard::ShardPlan::pairs(m, s);
        let concatenated: Vec<_> = plan
            .ranges()
            .flat_map(|r| shard::PairRangeIter::new(m, r))
            .collect();
        let mut full = Vec::new();
        for a in 0..m as u32 {
            for b in a + 1..m as u32 {
                full.push((a, b));
            }
        }
        prop_assert_eq!(concatenated, full);
    }

    #[test]
    fn unrank_is_the_inverse_of_rank(
        m in 3usize..2000,
        seed in any::<u64>(),
    ) {
        let total = combin::num_triples(m);
        let rank = seed % total;
        let t = shard::unrank_triple(m, rank);
        prop_assert!(t.0 < t.1 && t.1 < t.2 && (t.2 as usize) < m);
        prop_assert_eq!(shard::rank_triple(m, t), rank);
    }

    #[test]
    fn block_params_respect_budgets(
        ft_kib in 1usize..64,
        blk_kib in 1usize..64,
        vec_bits in prop::sample::select(vec![64usize, 128, 256, 512]),
    ) {
        let p = BlockParams::for_sizes(ft_kib * 1024, blk_kib * 1024, vec_bits);
        prop_assert!(p.bs >= 1);
        prop_assert!(p.bp >= 1);
        prop_assert!(p.ft_bytes() <= ft_kib * 1024 || p.bs == 1);
        // bp is a whole number of vector registers (when above one)
        let lanes = (vec_bits / 32).max(1);
        prop_assert!(p.bp.is_multiple_of(lanes) || p.bp == lanes);
    }

    /// PR 4: over *any* detected L2/L3 geometry (including absent levels,
    /// absurd sharing degrees, and tiny embedded caches) the adaptive
    /// budget never disables the cross-pair cache on a dataset the fixed
    /// 4 MiB budget enabled it for.
    #[test]
    fn adaptive_budget_never_disables_what_the_fixed_budget_enabled(
        has_l2 in any::<bool>(),
        l2_kib in prop::sample::select(vec![64usize, 256, 512, 1024, 2048, 4096, 16384]),
        l2_shared in 1usize..=16,
        has_l3 in any::<bool>(),
        l3_mib in prop::sample::select(vec![1usize, 4, 8, 32, 105, 256, 1024]),
        l3_shared in 1usize..=256,
        bs in 1usize..=8,
        class_words in 1usize..=200_000,
    ) {
        use devices::{CacheGeometry, SharedCache};
        use epi_core::block::CROSS_PAIR_CACHE_BUDGET;
        let l2 = has_l2.then_some(SharedCache {
            geom: CacheGeometry { size_bytes: l2_kib * 1024, ways: 8, line_bytes: 64 },
            shared_cpus: l2_shared,
        });
        let l3 = has_l3.then_some(SharedCache {
            geom: CacheGeometry { size_bytes: l3_mib << 20, ways: 16, line_bytes: 64 },
            shared_cpus: l3_shared,
        });
        let budget = BlockParams::budget_from_caches(l2, l3);
        // the floor: detection can widen the gate, never narrow it
        prop_assert!(budget >= CROSS_PAIR_CACHE_BUDGET);
        let p = BlockParams { bs, bp: 64 };
        if p.cross_pair_cache_enabled(class_words, CROSS_PAIR_CACHE_BUDGET) {
            prop_assert!(
                p.cross_pair_cache_enabled(class_words, budget),
                "budget {budget} disabled a dataset the fixed budget admitted"
            );
        }
    }

    /// PR 4: the paper-policy V5 block parameters keep the whole per-task
    /// working set — frequency tables, pair-total tables, pair-stream
    /// cache, and the third-SNP data block — within the L1 they were
    /// sized for, across plausible L1 geometries and vector widths.
    #[test]
    fn paper_policy_v5_working_set_stays_within_l1(
        size_kib in prop::sample::select(vec![8usize, 16, 24, 32, 48, 64, 128]),
        ways in prop::sample::select(vec![2usize, 4, 8, 12, 16]),
        vec_bits in prop::sample::select(vec![64usize, 256, 512]),
    ) {
        use devices::CacheGeometry;
        prop_assume!((size_kib * 1024).is_multiple_of(ways * 64));
        let l1 = CacheGeometry { size_bytes: size_kib * 1024, ways, line_bytes: 64 };
        let p = BlockParams::paper_policy_v5(&l1, vec_bits);
        prop_assert!(p.bs >= 1 && p.bp >= 1);
        let lanes = (vec_bits / 32).max(1);
        // B_P floors at one vector register; above the floor the whole
        // working set must fit the cache it was budgeted against
        if p.bp > lanes {
            let working_set = p.ft_bytes()
                + p.pair_table_bytes()
                + p.pair_cache_bytes()
                + p.bs * p.bp * 4 * 2;
            prop_assert!(
                working_set <= l1.size_bytes,
                "working set {working_set} exceeds L1 {} for {p:?}",
                l1.size_bytes
            );
        }
    }

    /// PR 5: the concurrency-honest budget never collapses to zero —
    /// whatever the detected geometry and however many workers share (or
    /// oversubscribe) a cache domain, the fixed 4 MiB floor holds, a
    /// worker's share never drops below its per-CPU slice, and more
    /// workers can only shrink the budget, never grow it.
    #[test]
    fn worker_budget_floors_and_is_monotone(
        l2_kib in prop::sample::select(vec![0usize, 256, 512, 1024, 2048, 4096]),
        l2_cpus in 1usize..=8,
        l3_kib in prop::sample::select(vec![0usize, 1024, 4096, 32 * 1024, 512 * 1024]),
        l3_cpus in 1usize..=128,
        workers in 1usize..=512,
    ) {
        use devices::{CacheGeometry, SharedCache};
        use epi_core::block::CROSS_PAIR_CACHE_BUDGET;
        let mk = |kib: usize, cpus: usize| (kib > 0).then(|| SharedCache {
            geom: CacheGeometry::kib(kib, 8),
            shared_cpus: cpus,
        });
        let (l2, l3) = (mk(l2_kib, l2_cpus), mk(l3_kib, l3_cpus));
        let budget = BlockParams::budget_from_caches_for_workers(l2, l3, workers);
        prop_assert!(budget >= CROSS_PAIR_CACHE_BUDGET, "budget {budget} below the floor");
        // never below the fully subscribed (per-CPU) budget
        prop_assert!(budget >= BlockParams::budget_from_caches(l2, l3));
        // monotone: doubling the workers cannot widen the budget
        let denser = BlockParams::budget_from_caches_for_workers(l2, l3, workers * 2);
        prop_assert!(denser <= budget);
        // and workers beyond every sharing degree change nothing
        let degree = l2.map_or(1, |c| c.shared_cpus).max(l3.map_or(1, |c| c.shared_cpus));
        if workers >= degree {
            prop_assert_eq!(budget, BlockParams::budget_from_caches(l2, l3));
        }
    }

    /// PR 5: thread-count and scheduler invariance of the blocked V5
    /// path with the cross-pair cache enabled — the property-based twin
    /// of `pairs::pair_scan_is_thread_invariant`, over random datasets,
    /// worker counts, and both pool schedulers.
    #[test]
    fn blocked_v5_scan_is_thread_invariant(
        (g, p) in labelled_strategy(),
        workers in prop::sample::select(vec![2usize, 3, 7]),
        chunk1 in prop::sample::select(vec![false, true]),
    ) {
        use epi_core::scan::{scan_split_with_workers, ScanConfig, Scheduler, Version};
        let ds = SplitDataset::encode(&g, &p);
        let mut cfg = ScanConfig::new(Version::V5);
        cfg.top_k = 5;
        let (want, _) = scan_split_with_workers(&ds, &cfg, 1);
        if chunk1 {
            cfg.scheduler = Scheduler::PoolChunk1;
        }
        let (got, stats) = scan_split_with_workers(&ds, &cfg, workers);
        prop_assert_eq!(got.top.len(), want.top.len());
        for (a, b) in got.top.iter().zip(&want.top) {
            prop_assert_eq!(a.triple, b.triple, "workers={} chunk1={}", workers, chunk1);
            prop_assert_eq!(
                a.score.to_bits(), b.score.to_bits(),
                "workers={} chunk1={}: scores must be bit-identical", workers, chunk1
            );
        }
        // V5 always reports pool stats, and every worker state is counted
        let stats = stats.unwrap();
        prop_assert!(stats.per_worker.len() <= workers);
    }

    /// PR 6: the significance test's seeded label permutation is a
    /// bijection on `0..n` (every index appears exactly once — a shuffle
    /// that drops or duplicates samples would silently corrupt the null
    /// distribution) and is fully determined by `(n, seed)`.
    #[test]
    fn seeded_permutation_is_a_seed_deterministic_bijection(
        n in 0usize..=300,
        seed in any::<u64>(),
    ) {
        use epi_core::permute::seeded_permutation;
        let perm = seeded_permutation(n, seed);
        prop_assert_eq!(perm.len(), n);
        let mut seen = vec![false; n];
        for &i in &perm {
            prop_assert!(i < n, "index {} out of range 0..{}", i, n);
            prop_assert!(!seen[i], "index {} appears twice", i);
            seen[i] = true;
        }
        // surjective follows from injective + same cardinality, but say so
        prop_assert!(seen.iter().all(|&s| s));
        // same (n, seed) -> same permutation, bit for bit
        prop_assert_eq!(&perm, &seeded_permutation(n, seed));
        // a different seed almost surely moves something (skip tiny n,
        // where there is only one possible permutation)
        if n >= 16 {
            prop_assert_ne!(&perm, &seeded_permutation(n, seed ^ 0x1));
        }
    }
}
