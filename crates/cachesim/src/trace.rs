//! Memory-access records and trace collection.

/// One memory access: a byte address and a length.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Access {
    /// Starting byte address.
    pub addr: u64,
    /// Length in bytes.
    pub bytes: u32,
}

/// Collects an access trace (tests and offline analysis); hot paths
/// stream straight into a [`crate::Cache`] instead.
#[derive(Clone, Debug, Default)]
pub struct TraceRecorder {
    accesses: Vec<Access>,
}

impl TraceRecorder {
    /// Empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one access.
    pub fn record(&mut self, addr: u64, bytes: u32) {
        self.accesses.push(Access { addr, bytes });
    }

    /// The recorded trace.
    pub fn trace(&self) -> &[Access] {
        &self.accesses
    }

    /// Total bytes touched (with multiplicity).
    pub fn total_bytes(&self) -> u64 {
        self.accesses.iter().map(|a| u64::from(a.bytes)).sum()
    }

    /// Distinct cache lines touched.
    pub fn distinct_lines(&self, line_bytes: u64) -> usize {
        let mut lines: Vec<u64> = self
            .accesses
            .iter()
            .flat_map(|a| {
                let first = a.addr / line_bytes;
                let last = (a.addr + u64::from(a.bytes) - 1) / line_bytes;
                first..=last
            })
            .collect();
        lines.sort_unstable();
        lines.dedup();
        lines.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts() {
        let mut r = TraceRecorder::new();
        r.record(0, 8);
        r.record(64, 8);
        r.record(4, 8); // overlaps line 0 (and line 0 only at 64B lines)
        assert_eq!(r.trace().len(), 3);
        assert_eq!(r.total_bytes(), 24);
        assert_eq!(r.distinct_lines(64), 2);
    }

    #[test]
    fn straddling_access_spans_lines() {
        let mut r = TraceRecorder::new();
        r.record(60, 8); // lines 0 and 1
        assert_eq!(r.distinct_lines(64), 2);
    }
}
