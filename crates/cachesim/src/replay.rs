//! Replaying the blocked scanner's address stream through the cache
//! model.
//!
//! The replay mirrors `epi_core::versions::blocked::BlockedScanner`'s loop
//! nest exactly — per class, per `B_P`-word sample window, the `ii0/ii1/
//! ii2` sweep loading six plane ranges and updating the per-combination
//! frequency tables — but emits *addresses* instead of doing arithmetic.
//! Plane addresses follow `bitgenome::ClassPlanes`' `[snp][g][word]`
//! layout; frequency tables live in a disjoint region, as they do on the
//! real heap.

use crate::cache::{Cache, CacheStats};
use devices::CacheGeometry;
use epi_core::BlockParams;

const WORD_BYTES: u64 = 8; // bitgenome packs into u64
const FT_CELL_BYTES: u64 = 4; // 32-bit counters
const FT_BASE: u64 = 1 << 40; // disjoint heap region for the tables

/// Outcome of a blocked-scan cache replay.
#[derive(Clone, Debug)]
pub struct BlockedScanCacheReport {
    /// Cache counters over the replayed window.
    pub stats: CacheStats,
    /// Frequency-table bytes the configuration needs.
    pub ft_bytes: usize,
    /// Data-block bytes per window.
    pub block_bytes: usize,
    /// Block triples replayed.
    pub block_triples: usize,
}

impl BlockedScanCacheReport {
    /// L1 hit rate over the replay.
    pub fn hit_rate(&self) -> f64 {
        self.stats.hit_rate()
    }
}

/// Replay up to `max_block_triples` tasks of a blocked scan of `m` SNPs
/// whose two classes span `words` packed `u64` words each, through an L1
/// of the given geometry.
pub fn replay_blocked_scan(
    m: usize,
    words: [usize; 2],
    params: BlockParams,
    l1: &CacheGeometry,
    max_block_triples: usize,
) -> BlockedScanCacheReport {
    let bs = params.bs;
    let bpw = params.bp_words();
    let mut cache = Cache::new(l1);

    // class plane base addresses, laid out back to back
    let class_base = |class: usize| -> u64 {
        if class == 0 {
            0
        } else {
            (m * 2 * words[0]) as u64 * WORD_BYTES
        }
    };
    let plane_addr = |class: usize, snp: usize, g: usize, word: usize| -> u64 {
        class_base(class) + (((snp * 2 + g) * words[class] + word) as u64) * WORD_BYTES
    };

    let nb = m.div_ceil(bs);
    let mut replayed = 0usize;
    'outer: for b0 in 0..nb {
        for b1 in b0..nb {
            for b2 in b1..nb {
                replay_block_triple(&mut cache, (b0, b1, b2), m, bs, bpw, words, &plane_addr);
                replayed += 1;
                if replayed >= max_block_triples {
                    break 'outer;
                }
            }
        }
    }

    BlockedScanCacheReport {
        stats: cache.stats(),
        ft_bytes: params.ft_bytes(),
        block_bytes: params.block_bytes(),
        block_triples: replayed,
    }
}

#[allow(clippy::too_many_arguments)]
fn replay_block_triple(
    cache: &mut Cache,
    (b0, b1, b2): (usize, usize, usize),
    m: usize,
    bs: usize,
    bpw: usize,
    words: [usize; 2],
    plane_addr: &dyn Fn(usize, usize, usize, usize) -> u64,
) {
    let touch_range = |cache: &mut Cache, class, snp, w0: usize, wend: usize| {
        for g in 0..2 {
            for w in w0..wend {
                cache.access_range(plane_addr(class, snp, g, w), WORD_BYTES as usize);
            }
        }
    };
    #[allow(clippy::needless_range_loop)]
    for class in 0..2 {
        let nwords = words[class];
        let mut w0 = 0;
        while w0 < nwords {
            let wend = (w0 + bpw).min(nwords);
            for ii0 in 0..bs {
                let s0 = b0 * bs + ii0;
                if s0 >= m {
                    break;
                }
                touch_range(cache, class, s0, w0, wend);
                for ii1 in 0..bs {
                    let s1 = b1 * bs + ii1;
                    if s1 >= m {
                        break;
                    }
                    if s1 <= s0 {
                        continue;
                    }
                    touch_range(cache, class, s1, w0, wend);
                    for ii2 in 0..bs {
                        let s2 = b2 * bs + ii2;
                        if s2 >= m {
                            break;
                        }
                        if s2 <= s1 {
                            continue;
                        }
                        touch_range(cache, class, s2, w0, wend);
                        // frequency-table update: 27 cells of this
                        // combination's class half
                        let combo = ((ii0 * bs + ii1) * bs + ii2) as u64;
                        let ft_addr = FT_BASE
                            + combo * 54 * FT_CELL_BYTES
                            + class as u64 * 27 * FT_CELL_BYTES;
                        cache.access_range(ft_addr, (27 * FT_CELL_BYTES) as usize);
                    }
                }
            }
            w0 = wend;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const L1_ICX: CacheGeometry = CacheGeometry::kib(48, 12);

    fn report(params: BlockParams, m: usize, words: usize) -> BlockedScanCacheReport {
        replay_blocked_scan(m, [words, words], params, &L1_ICX, 6)
    }

    #[test]
    fn paper_policy_is_l1_resident() {
        // <5, 400>: ft 27 KiB + window 5*200*8*2 = 16 KiB => fits 48 KiB.
        let r = report(BlockParams { bs: 5, bp: 400 }, 64, 1024);
        // three block slices + the tables slightly exceed one L1, so a
        // single-level model keeps ~92 % (the residue hits L2 on silicon)
        assert!(
            r.hit_rate() > 0.90,
            "paper-policy tiling should be L1-resident: {}",
            r.hit_rate()
        );
    }

    #[test]
    fn oversized_sample_window_thrashes() {
        // bp covering all 4096 words: window = 5*4096*8*2 = 320 KiB >> L1.
        let good = report(BlockParams { bs: 5, bp: 400 }, 64, 4096);
        let bad = report(BlockParams { bs: 5, bp: 1 << 20 }, 64, 4096);
        assert!(
            bad.hit_rate() < good.hit_rate() - 0.02,
            "good {} vs bad {}",
            good.hit_rate(),
            bad.hit_rate()
        );
    }

    #[test]
    fn oversized_ft_thrashes() {
        // bs=12 => ft = 12^3*216 B = 373 KiB >> L1: the table updates
        // themselves start missing.
        let good = report(BlockParams { bs: 5, bp: 400 }, 72, 512);
        let bad = report(BlockParams { bs: 12, bp: 400 }, 72, 512);
        assert!(
            bad.hit_rate() < good.hit_rate(),
            "good {} vs bad {}",
            good.hit_rate(),
            bad.hit_rate()
        );
    }

    #[test]
    fn report_bookkeeping() {
        let p = BlockParams { bs: 5, bp: 400 };
        let r = report(p, 32, 256);
        assert_eq!(r.ft_bytes, p.ft_bytes());
        assert_eq!(r.block_triples, 6);
        assert!(r.stats.accesses() > 0);
    }
}
