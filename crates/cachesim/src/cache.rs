//! Set-associative LRU cache model.

use devices::CacheGeometry;

/// Hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]` (1.0 for an untouched cache).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            1.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }
}

/// A single-level, set-associative, true-LRU cache over byte addresses.
#[derive(Clone, Debug)]
pub struct Cache {
    line_bytes: usize,
    sets: usize,
    ways: usize,
    /// `tags[set * ways + way]`; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags` (higher = more recent).
    stamps: Vec<u64>,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Build from a cache geometry descriptor.
    pub fn new(geometry: &CacheGeometry) -> Self {
        let sets = geometry.sets();
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Self {
            line_bytes: geometry.line_bytes,
            sets,
            ways: geometry.ways,
            tags: vec![u64::MAX; sets * geometry.ways],
            stamps: vec![0; sets * geometry.ways],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Access one byte address (reads and writes are modelled alike).
    /// Returns `true` on a hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let line = addr / self.line_bytes as u64;
        let set = (line as usize) & (self.sets - 1);
        let tag = line >> self.sets.trailing_zeros();
        let base = set * self.ways;

        // hit?
        for way in 0..self.ways {
            if self.tags[base + way] == tag {
                self.stamps[base + way] = self.clock;
                self.stats.hits += 1;
                return true;
            }
        }
        // miss: evict LRU way
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for way in 0..self.ways {
            if self.tags[base + way] == u64::MAX {
                victim = way;
                break;
            }
            if self.stamps[base + way] < oldest {
                oldest = self.stamps[base + way];
                victim = way;
            }
        }
        self.tags[base + victim] = tag;
        self.stamps[base + victim] = self.clock;
        self.stats.misses += 1;
        false
    }

    /// Access a contiguous byte range (e.g. one packed word).
    pub fn access_range(&mut self, addr: u64, bytes: usize) {
        let first = addr / self.line_bytes as u64;
        let last = (addr + bytes as u64 - 1) / self.line_bytes as u64;
        for line in first..=last {
            self.access(line * self.line_bytes as u64);
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Reset counters but keep cache contents (for warm-up phases).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.sets * self.ways * self.line_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 KiB, 4-way, 64 B lines => 16 sets
        Cache::new(&CacheGeometry::kib(4, 4))
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = tiny();
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1004)); // same line
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn working_set_within_capacity_stays_resident() {
        let mut c = tiny();
        let lines: Vec<u64> = (0..64).map(|i| i * 64).collect(); // 4 KiB exactly
        for &a in &lines {
            c.access(a);
        }
        c.reset_stats();
        for _ in 0..10 {
            for &a in &lines {
                assert!(c.access(a));
            }
        }
        assert_eq!(c.stats().misses, 0);
    }

    #[test]
    fn working_set_beyond_capacity_thrashes() {
        let mut c = tiny();
        // 8 KiB streamed cyclically through a 4 KiB LRU cache: every
        // access evicts the line needed furthest in the future-past.
        let lines: Vec<u64> = (0..128).map(|i| i * 64).collect();
        for _ in 0..4 {
            for &a in &lines {
                c.access(a);
            }
        }
        assert!(
            c.stats().hit_rate() < 0.05,
            "cyclic overflow must thrash: {}",
            c.stats().hit_rate()
        );
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 1 set? construct 4-way with 16 sets; use addresses mapping to
        // set 0: line numbers multiples of 16.
        let mut c = tiny();
        let addr = |i: u64| i * 16 * 64; // same set, different tags
        for i in 0..4 {
            c.access(addr(i));
        }
        c.access(addr(0)); // refresh tag 0
        c.access(addr(4)); // evicts tag 1 (LRU)
        assert!(c.access(addr(0)), "tag 0 refreshed, must survive");
        assert!(!c.access(addr(1)), "tag 1 was LRU, must be gone");
    }

    #[test]
    fn access_range_touches_all_lines() {
        let mut c = tiny();
        c.access_range(60, 8); // straddles lines 0 and 1
        assert_eq!(c.stats().misses, 2);
        c.access_range(60, 4); // line 0 only
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn capacity_matches_geometry() {
        assert_eq!(tiny().capacity(), 4096);
        assert_eq!(
            Cache::new(&CacheGeometry::kib(48, 12)).capacity(),
            48 * 1024
        );
    }
}
