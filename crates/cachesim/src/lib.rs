//! # cachesim — validating the paper's L1 tiling story
//!
//! §IV-A sizes the blocked kernel so that the `B_S³` frequency tables and
//! the active `B_S × B_P` data block are simultaneously L1-resident. That
//! claim is an assertion about *address streams*, so this crate checks it
//! directly: a set-associative LRU [`cache::Cache`] replays the exact
//! memory trace the blocked scanner generates ([`trace`]) and reports hit
//! rates ([`replay`]). The bench harness uses it to show that the
//! paper-policy `⟨B_S, B_P⟩` keeps the L1 hit rate near 100 % while
//! oversized blocks collapse it — the micro-architectural mechanism
//! behind the V3 speedup, made visible without hardware counters.

#![forbid(unsafe_code)]

pub mod cache;
pub mod replay;
pub mod trace;

pub use cache::{Cache, CacheStats};
pub use replay::{replay_blocked_scan, BlockedScanCacheReport};
pub use trace::{Access, TraceRecorder};
