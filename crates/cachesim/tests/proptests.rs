//! Property-based invariants of the cache model.

use cachesim::Cache;
use devices::CacheGeometry;
use proptest::prelude::*;

fn address_trace() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..(1 << 20), 1..600)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hits_plus_misses_equals_accesses(trace in address_trace()) {
        let mut c = Cache::new(&CacheGeometry::kib(8, 4));
        for &a in &trace {
            c.access(a);
        }
        prop_assert_eq!(c.stats().accesses(), trace.len() as u64);
        let hr = c.stats().hit_rate();
        prop_assert!((0.0..=1.0).contains(&hr));
    }

    #[test]
    fn bigger_cache_never_hits_less_fully_assoc(trace in address_trace()) {
        // LRU inclusion property holds for fully-associative caches (one
        // set): doubling capacity can only add hits.
        let small_geom = CacheGeometry { size_bytes: 16 * 64, ways: 16, line_bytes: 64 };
        let large_geom = CacheGeometry { size_bytes: 32 * 64, ways: 32, line_bytes: 64 };
        let mut small = Cache::new(&small_geom);
        let mut large = Cache::new(&large_geom);
        for &a in &trace {
            small.access(a);
            large.access(a);
        }
        prop_assert!(large.stats().hits >= small.stats().hits);
    }

    #[test]
    fn immediate_reaccess_always_hits(trace in address_trace()) {
        let mut c = Cache::new(&CacheGeometry::kib(4, 4));
        for &a in &trace {
            c.access(a);
            prop_assert!(c.access(a), "immediate re-access of {a} missed");
        }
    }

    #[test]
    fn first_touch_of_each_line_misses(trace in address_trace()) {
        let mut c = Cache::new(&CacheGeometry::kib(64, 8));
        let mut distinct = std::collections::HashSet::new();
        let mut compulsory = 0u64;
        for &a in &trace {
            if distinct.insert(a / 64) {
                compulsory += 1;
            }
            c.access(a);
        }
        // misses are at least the compulsory ones
        prop_assert!(c.stats().misses >= compulsory.min(trace.len() as u64));
        prop_assert!(c.stats().misses >= 1);
    }

    #[test]
    fn reset_stats_preserves_contents(addr in 0u64..(1 << 16)) {
        let mut c = Cache::new(&CacheGeometry::kib(4, 4));
        c.access(addr);
        c.reset_stats();
        prop_assert_eq!(c.stats().accesses(), 0);
        prop_assert!(c.access(addr), "contents must survive a stats reset");
    }
}
