//! Multi-node (MPI-style) execution simulation.
//!
//! MPI3SNP's headline feature is cluster distribution: SNP leading
//! indices are dealt cyclically across ranks, each rank scans its share
//! with local threads, and a final all-reduce picks the global optimum.
//! This module simulates that decomposition on one machine so the
//! baseline's distribution strategy (and its load-balance behaviour) can
//! be studied without MPI.

use crate::mpi3snp::Mpi3SnpDataset;
use bitgenome::{GenotypeMatrix, Phenotype};
use epi_core::combin;
use epi_core::k2::{K2Scorer, Objective};
use epi_core::result::{Candidate, TopK};

/// How leading indices are assigned to ranks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Distribution {
    /// Round-robin by leading index (MPI3SNP's scheme) — balances the
    /// triangular workload well because expensive and cheap leading
    /// indices interleave.
    Cyclic,
    /// Contiguous index ranges — the naive scheme cyclic distribution
    /// exists to beat.
    Blocked,
}

/// Per-rank accounting from a simulated cluster run.
#[derive(Clone, Debug)]
pub struct RankReport {
    /// Rank id.
    pub rank: usize,
    /// Leading indices assigned.
    pub leading_indices: usize,
    /// Triples evaluated.
    pub combos: u64,
}

/// Result of a simulated cluster scan.
#[derive(Clone, Debug)]
pub struct ClusterResult {
    /// Globally best candidates, lowest score first.
    pub top: Vec<Candidate>,
    /// Per-rank work accounting.
    pub ranks: Vec<RankReport>,
}

impl ClusterResult {
    /// Load imbalance: `max(combos) / mean(combos)` across ranks
    /// (1.0 = perfect balance).
    pub fn imbalance(&self) -> f64 {
        let combos: Vec<f64> = self.ranks.iter().map(|r| r.combos as f64).collect();
        let max = combos.iter().cloned().fold(0.0, f64::max);
        let mean = combos.iter().sum::<f64>() / combos.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// Simulate an MPI3SNP-style cluster scan over `ranks` ranks.
pub fn cluster_scan(
    genotypes: &GenotypeMatrix,
    phenotype: &Phenotype,
    ranks: usize,
    distribution: Distribution,
    top_k: usize,
) -> ClusterResult {
    assert!(ranks >= 1);
    let m = genotypes.num_snps();
    let ds = Mpi3SnpDataset::encode(genotypes, phenotype);
    let scorer = K2Scorer::new(genotypes.num_samples());

    let assignment: Vec<Vec<usize>> = match distribution {
        Distribution::Cyclic => {
            let mut a = vec![Vec::new(); ranks];
            for i0 in 0..m {
                a[i0 % ranks].push(i0);
            }
            a
        }
        Distribution::Blocked => {
            let per = m.div_ceil(ranks);
            (0..ranks)
                .map(|r| (r * per..((r + 1) * per).min(m)).collect())
                .collect()
        }
    };

    // each "rank" runs serially here; the intra-rank thread pool is
    // already exercised by Mpi3SnpScanner
    let mut reports = Vec::with_capacity(ranks);
    let mut global = TopK::new(top_k);
    for (rank, leading) in assignment.iter().enumerate() {
        let mut local = TopK::new(top_k);
        let mut combos = 0u64;
        for &i0 in leading {
            for t in combin::triples_with_leading(m, i0) {
                let table = ds.table_for_triple(t);
                local.push(scorer.score(&table), t);
                combos += 1;
            }
        }
        reports.push(RankReport {
            rank,
            leading_indices: leading.len(),
            combos,
        });
        global.merge(local); // the MPI all-reduce
    }

    ClusterResult {
        top: global.into_sorted(),
        ranks: reports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(m: usize, n: usize, seed: u64) -> (GenotypeMatrix, Phenotype) {
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            s >> 33
        };
        let data: Vec<u8> = (0..m * n).map(|_| (next() % 3) as u8).collect();
        let labels: Vec<u8> = (0..n).map(|_| (next() % 2) as u8).collect();
        (
            GenotypeMatrix::from_raw(m, n, data),
            Phenotype::from_labels(labels),
        )
    }

    #[test]
    fn cluster_matches_single_node_result() {
        let (g, p) = dataset(14, 96, 4);
        let single = crate::mpi3snp::Mpi3SnpScanner::new(&g, &p).scan(3, 1);
        for dist in [Distribution::Cyclic, Distribution::Blocked] {
            for ranks in [1usize, 2, 3, 5] {
                let res = cluster_scan(&g, &p, ranks, dist, 3);
                assert_eq!(res.top, single.top, "{dist:?} ranks={ranks}");
                let total: u64 = res.ranks.iter().map(|r| r.combos).sum();
                assert_eq!(total, combin::num_triples(14));
            }
        }
    }

    #[test]
    fn cyclic_balances_better_than_blocked() {
        let (g, p) = dataset(40, 32, 9);
        let cyclic = cluster_scan(&g, &p, 4, Distribution::Cyclic, 1);
        let blocked = cluster_scan(&g, &p, 4, Distribution::Blocked, 1);
        assert!(
            cyclic.imbalance() < blocked.imbalance(),
            "cyclic {} vs blocked {}",
            cyclic.imbalance(),
            blocked.imbalance()
        );
        // triangular workload: the first blocked rank hoards the work
        assert!(blocked.imbalance() > 1.5);
        assert!(cyclic.imbalance() < 1.2);
    }

    #[test]
    fn more_ranks_than_snps_is_fine() {
        let (g, p) = dataset(5, 40, 2);
        let res = cluster_scan(&g, &p, 16, Distribution::Cyclic, 1);
        assert_eq!(res.ranks.len(), 16);
        let total: u64 = res.ranks.iter().map(|r| r.combos).sum();
        assert_eq!(total, combin::num_triples(5));
    }
}
