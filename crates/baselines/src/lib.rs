//! # baselines — state-of-the-art comparators (Table III)
//!
//! The paper compares its best approach against MPI3SNP
//! (Ponte-Fernández et al.), a hand-tuned CUDA detector, and a CPU+iGPU
//! framework. We rebuild the *algorithmic structure* of the reference
//! baseline in Rust so the Table III speedup ratios can be measured
//! apples-to-apples on the same host:
//!
//! * [`mpi3snp`] — MPI3SNP-style detector: binarized three-plane
//!   case/control-split representation and per-triple bitwise
//!   AND/POPCNT table construction, but **no** genotype-2 inference, **no**
//!   cache blocking and **no** explicit vectorisation — the properties the
//!   paper's §II credits for its advantage. A matching GPU kernel profile
//!   feeds the `gpu-sim` timing model for the GPU rows of Table III.
//! * [`naive`] — dense per-sample counting without bit packing (the
//!   pre-BOOST baseline), useful to demonstrate what binarisation alone
//!   buys.

#![forbid(unsafe_code)]

pub mod cluster;
pub mod mpi3snp;
pub mod naive;

pub use cluster::{cluster_scan, ClusterResult, Distribution};
pub use mpi3snp::{Mpi3SnpDataset, Mpi3SnpScanner};
pub use naive::naive_scan;
