//! MPI3SNP-style reference detector.
//!
//! MPI3SNP (IJHPCA 2020) is the paper's primary third-order comparator.
//! Its single-node kernel structure, reproduced here:
//!
//! * the dataset is binarized and split by class — but **all three**
//!   genotype planes are materialised (1.5× the memory traffic of the
//!   paper's two-plane layout);
//! * each triple is evaluated independently by streaming entire sample
//!   arrays (no L1 tiling, so large datasets run from LLC/DRAM);
//! * table construction uses scalar 64-bit bitwise ops (no explicit
//!   SIMD intrinsics);
//! * scoring is left unchanged (K2) so measured speedups isolate kernel
//!   quality, as in Table III.

use bitgenome::word::{set_bit, words_for, Word};
use bitgenome::{GenotypeMatrix, Phenotype, CASE, CTRL, GENOTYPES};
use epi_core::combin;
use epi_core::k2::{K2Scorer, Objective};
use epi_core::pool;
use epi_core::result::{Candidate, TopK, Triple};
use epi_core::table27::{cell_index, ContingencyTable};
use gpu_sim::timing::KernelProfile;
use std::time::{Duration, Instant};

/// Three-plane, class-split binarized dataset (MPI3SNP's layout).
#[derive(Clone, Debug)]
pub struct Mpi3SnpDataset {
    m: usize,
    n: usize,
    words: [usize; 2],
    /// `[class][snp][genotype][word]`, flattened per class.
    planes: [Vec<Word>; 2],
}

impl Mpi3SnpDataset {
    /// Encode a dense matrix, splitting samples by phenotype.
    pub fn encode(genotypes: &GenotypeMatrix, phenotype: &Phenotype) -> Self {
        let m = genotypes.num_snps();
        let n = genotypes.num_samples();
        let masks = [phenotype.control_mask(), phenotype.case_mask()];
        let mut words = [0usize; 2];
        let mut planes: [Vec<Word>; 2] = [Vec::new(), Vec::new()];
        for class in [CTRL, CASE] {
            let kept: Vec<usize> = (0..n).filter(|&j| masks[class][j]).collect();
            let w = words_for(kept.len());
            words[class] = w;
            let mut data = vec![0 as Word; m * GENOTYPES * w];
            for snp in 0..m {
                let row = genotypes.snp(snp);
                for (bit, &j) in kept.iter().enumerate() {
                    let base = (snp * GENOTYPES + row[j] as usize) * w;
                    set_bit(&mut data[base..base + w], bit);
                }
            }
            planes[class] = data;
        }
        Self {
            m,
            n,
            words,
            planes,
        }
    }

    /// Number of SNPs.
    pub fn num_snps(&self) -> usize {
        self.m
    }

    /// Number of samples.
    pub fn num_samples(&self) -> usize {
        self.n
    }

    #[inline]
    fn plane(&self, class: usize, snp: usize, g: usize) -> &[Word] {
        let w = self.words[class];
        let base = (snp * GENOTYPES + g) * w;
        &self.planes[class][base..base + w]
    }

    /// Contingency table for one triple — MPI3SNP's inner loop: 27 cells,
    /// each a 3-way AND + POPCNT over the full class arrays.
    pub fn table_for_triple(&self, t: Triple) -> ContingencyTable {
        let (x, y, z) = (t.0 as usize, t.1 as usize, t.2 as usize);
        let mut table = ContingencyTable::new();
        for class in [CTRL, CASE] {
            for gx in 0..3 {
                let px = self.plane(class, x, gx);
                for gy in 0..3 {
                    let py = self.plane(class, y, gy);
                    for gz in 0..3 {
                        let pz = self.plane(class, z, gz);
                        table.counts[class][cell_index(gx, gy, gz)] =
                            bitgenome::popcnt::popcount_and3(px, py, pz) as u32;
                    }
                }
            }
        }
        table
    }
}

/// Parallel MPI3SNP-style scanner (dynamic scheduling over leading
/// indices, like the original's MPI rank / thread decomposition).
pub struct Mpi3SnpScanner {
    ds: Mpi3SnpDataset,
}

/// Scan outcome (same accounting as `epi_core::scan::ScanResult`).
#[derive(Clone, Debug)]
pub struct Mpi3SnpResult {
    /// Best candidates, lowest K2 first.
    pub top: Vec<Candidate>,
    /// Combinations evaluated.
    pub combos: u64,
    /// Combinations × samples.
    pub elements: u128,
    /// Kernel wall-clock.
    pub elapsed: Duration,
}

impl Mpi3SnpResult {
    /// Throughput in Giga elements/s (Table III's unit).
    pub fn giga_elements_per_sec(&self) -> f64 {
        self.elements as f64 / self.elapsed.as_secs_f64() / 1e9
    }
}

impl Mpi3SnpScanner {
    /// Encode and wrap a dataset.
    pub fn new(genotypes: &GenotypeMatrix, phenotype: &Phenotype) -> Self {
        Self {
            ds: Mpi3SnpDataset::encode(genotypes, phenotype),
        }
    }

    /// Access the encoded dataset.
    pub fn dataset(&self) -> &Mpi3SnpDataset {
        &self.ds
    }

    /// Run the exhaustive scan on `threads` workers (0 = all cores).
    pub fn scan(&self, top_k: usize, threads: usize) -> Mpi3SnpResult {
        let m = self.ds.num_snps();
        let n = self.ds.num_samples();
        if m < 3 {
            return Mpi3SnpResult {
                top: Vec::new(),
                combos: 0,
                elements: 0,
                elapsed: Duration::ZERO,
            };
        }
        let scorer = K2Scorer::new(n);
        let start = Instant::now();
        let states = pool::run_dynamic(
            m,
            threads,
            1,
            || TopK::new(top_k),
            |i0, top| {
                for t in combin::triples_with_leading(m, i0) {
                    let table = self.ds.table_for_triple(t);
                    top.push(scorer.score(&table), t);
                }
            },
        );
        let elapsed = start.elapsed();
        let mut merged = TopK::new(top_k);
        for s in states {
            merged.merge(s);
        }
        Mpi3SnpResult {
            top: merged.into_sorted(),
            combos: combin::num_triples(m),
            elements: combin::num_elements(m, n),
            elapsed,
        }
    }
}

/// GPU kernel profile of the MPI3SNP-style kernel for the `gpu-sim`
/// timing model: three stored planes (36 B/word, 27×(2 AND + 1 POPCNT) +
/// 27 ADD = 108 ops, no NOR), partially coalesced accesses (its pair-major
/// decomposition gives each thread a longer z-loop, so some spatial reuse
/// survives without an explicit transposition). Coalescing/reuse are
/// calibrated so a Titan V reproduces the paper's measured 663 G
/// elements/s on the 10000 × 1600 dataset; reuse decays with the sample
/// count (bigger per-SNP arrays stop fitting in L2 — the effect that
/// makes MPI3SNP *slower* on 40000 × 6400 in the paper's Table III).
pub fn mpi3snp_gpu_profile() -> KernelProfile {
    KernelProfile {
        popcnt_per_word: 27.0,
        other_per_word: 81.0,
        bytes_per_word: 36.0,
        coalescing: 0.45,
        reuse: 2.8,
    }
}

/// Sample-count decay of the baseline's cache reuse (see
/// [`mpi3snp_gpu_profile`]): divide `reuse` by `1 + n / 50000`.
pub fn mpi3snp_reuse_decay(n: usize) -> f64 {
    1.0 / (1.0 + n as f64 / 50_000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(m: usize, n: usize, seed: u64) -> (GenotypeMatrix, Phenotype) {
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            s >> 33
        };
        let data: Vec<u8> = (0..m * n).map(|_| (next() % 3) as u8).collect();
        let labels: Vec<u8> = (0..n).map(|_| (next() % 2) as u8).collect();
        (
            GenotypeMatrix::from_raw(m, n, data),
            Phenotype::from_labels(labels),
        )
    }

    #[test]
    fn tables_match_dense_reference() {
        let (g, p) = dataset(7, 131, 3);
        let ds = Mpi3SnpDataset::encode(&g, &p);
        for t in [(0u32, 1, 2), (2, 4, 6), (1, 3, 5)] {
            let want =
                ContingencyTable::from_dense(&g, &p, (t.0 as usize, t.1 as usize, t.2 as usize));
            assert_eq!(ds.table_for_triple(t), want, "{t:?}");
        }
    }

    #[test]
    fn baseline_and_proposed_find_same_solution() {
        let (g, p) = dataset(12, 144, 9);
        let base = Mpi3SnpScanner::new(&g, &p).scan(3, 2);
        let mut cfg = epi_core::scan::ScanConfig::new(epi_core::scan::Version::V4);
        cfg.top_k = 3;
        let ours = epi_core::scan::scan(&g, &p, &cfg);
        assert_eq!(base.top, ours.top);
        assert_eq!(base.combos, ours.combos);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let (g, p) = dataset(2, 20, 1);
        let res = Mpi3SnpScanner::new(&g, &p).scan(1, 1);
        assert!(res.top.is_empty());
        assert_eq!(res.combos, 0);
    }

    #[test]
    fn gpu_profile_heavier_than_ours() {
        let ours = KernelProfile::for_version(gpu_sim::GpuVersion::V4);
        let theirs = mpi3snp_gpu_profile();
        assert!(theirs.bytes_per_word > ours.bytes_per_word);
        assert!(theirs.coalescing < ours.coalescing);
    }
}
