//! Naive dense-counting baseline (no bit packing).
//!
//! Before BOOST introduced the binarized representation, detectors walked
//! the dense genotype bytes sample-by-sample. This baseline quantifies
//! what binarisation + POPCNT alone are worth (≈ 32–64× fewer inner-loop
//! iterations) independently of the paper's further optimisations.

use bitgenome::{GenotypeMatrix, Phenotype};
use epi_core::combin;
use epi_core::k2::{K2Scorer, Objective};
use epi_core::pool;
use epi_core::result::{Candidate, TopK};
use epi_core::table27::ContingencyTable;
use std::time::{Duration, Instant};

/// Result of a naive dense scan.
#[derive(Clone, Debug)]
pub struct NaiveResult {
    /// Best candidates, lowest K2 first.
    pub top: Vec<Candidate>,
    /// Combinations evaluated.
    pub combos: u64,
    /// Combinations × samples.
    pub elements: u128,
    /// Wall-clock.
    pub elapsed: Duration,
}

impl NaiveResult {
    /// Throughput in Giga elements per second.
    pub fn giga_elements_per_sec(&self) -> f64 {
        self.elements as f64 / self.elapsed.as_secs_f64() / 1e9
    }
}

/// Exhaustive scan with per-sample dense counting.
pub fn naive_scan(
    genotypes: &GenotypeMatrix,
    phenotype: &Phenotype,
    top_k: usize,
    threads: usize,
) -> NaiveResult {
    let m = genotypes.num_snps();
    let n = genotypes.num_samples();
    if m < 3 {
        return NaiveResult {
            top: Vec::new(),
            combos: 0,
            elements: 0,
            elapsed: Duration::ZERO,
        };
    }
    let scorer = K2Scorer::new(n);
    let start = Instant::now();
    let states = pool::run_dynamic(
        m,
        threads,
        1,
        || TopK::new(top_k),
        |i0, top| {
            for t in combin::triples_with_leading(m, i0) {
                let table = ContingencyTable::from_dense(
                    genotypes,
                    phenotype,
                    (t.0 as usize, t.1 as usize, t.2 as usize),
                );
                top.push(scorer.score(&table), t);
            }
        },
    );
    let elapsed = start.elapsed();
    let mut merged = TopK::new(top_k);
    for s in states {
        merged.merge(s);
    }
    NaiveResult {
        top: merged.into_sorted(),
        combos: combin::num_triples(m),
        elements: combin::num_elements(m, n),
        elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(m: usize, n: usize, seed: u64) -> (GenotypeMatrix, Phenotype) {
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            s >> 33
        };
        let data: Vec<u8> = (0..m * n).map(|_| (next() % 3) as u8).collect();
        let labels: Vec<u8> = (0..n).map(|_| (next() % 2) as u8).collect();
        (
            GenotypeMatrix::from_raw(m, n, data),
            Phenotype::from_labels(labels),
        )
    }

    #[test]
    fn naive_matches_optimised_scan() {
        let (g, p) = dataset(10, 96, 5);
        let naive = naive_scan(&g, &p, 4, 2);
        let mut cfg = epi_core::scan::ScanConfig::new(epi_core::scan::Version::V4);
        cfg.top_k = 4;
        let ours = epi_core::scan::scan(&g, &p, &cfg);
        assert_eq!(naive.top, ours.top);
    }

    #[test]
    fn degenerate_input() {
        let (g, p) = dataset(1, 8, 2);
        assert!(naive_scan(&g, &p, 1, 1).top.is_empty());
    }
}
