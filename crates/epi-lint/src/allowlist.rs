//! The findings allowlist: `epi-lint.allow` at the repo root.
//!
//! Format — one entry per line, four pipe-separated fields:
//!
//! ```text
//! CHECK-ID | path-suffix | needle | justification
//! ```
//!
//! An entry suppresses a finding when the finding's check ID matches, the
//! finding's file path ends with `path-suffix`, and the source line the
//! finding points at contains `needle`. The justification is mandatory and
//! is carried into `--json` output so audits can read why each site is
//! accepted. Blank lines and lines starting with `#` are ignored.
//!
//! Entries that suppress nothing are themselves reported as
//! `ALLOW-UNUSED` findings, so the allowlist can only shrink-to-fit: a
//! stale entry fails CI just like a new violation.

use crate::Finding;

#[derive(Debug, Clone)]
pub struct AllowEntry {
    pub check: String,
    pub path_suffix: String,
    pub needle: String,
    pub justification: String,
    /// 1-based line in the allowlist file, for ALLOW-UNUSED reporting.
    pub line: usize,
}

#[derive(Debug, Default)]
pub struct Allowlist {
    pub entries: Vec<AllowEntry>,
    pub path: String,
}

/// A parse problem in the allowlist file itself.
#[derive(Debug)]
pub struct AllowParseError {
    pub line: usize,
    pub message: String,
}

impl Allowlist {
    pub fn parse(path: &str, text: &str) -> Result<Allowlist, AllowParseError> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = trimmed.splitn(4, '|').map(str::trim).collect();
            if fields.len() != 4 {
                return Err(AllowParseError {
                    line,
                    message: format!(
                        "expected 4 pipe-separated fields (CHECK-ID | path | needle | why), got {}",
                        fields.len()
                    ),
                });
            }
            if fields.iter().any(|f| f.is_empty()) {
                return Err(AllowParseError {
                    line,
                    message: "empty field; every entry needs a check ID, path, needle, and \
                              justification"
                        .to_string(),
                });
            }
            entries.push(AllowEntry {
                check: fields[0].to_string(),
                path_suffix: fields[1].to_string(),
                needle: fields[2].to_string(),
                justification: fields[3].to_string(),
                line,
            });
        }
        Ok(Allowlist {
            entries,
            path: path.to_string(),
        })
    }

    /// Split findings into (kept, suppressed) and append an `ALLOW-UNUSED`
    /// finding for every entry that suppressed nothing.
    pub fn apply(&self, findings: Vec<Finding>) -> (Vec<Finding>, Vec<Finding>) {
        let mut used = vec![false; self.entries.len()];
        let mut kept = Vec::new();
        let mut suppressed = Vec::new();
        for mut f in findings {
            let hit = self.entries.iter().enumerate().find(|(_, e)| {
                e.check == f.check
                    && f.file.ends_with(&e.path_suffix)
                    && f.excerpt.contains(&e.needle)
            });
            match hit {
                Some((i, e)) => {
                    used[i] = true;
                    f.justification = Some(e.justification.clone());
                    suppressed.push(f);
                }
                None => kept.push(f),
            }
        }
        for (i, e) in self.entries.iter().enumerate() {
            if !used[i] {
                kept.push(Finding {
                    check: "ALLOW-UNUSED".to_string(),
                    file: self.path.clone(),
                    line: e.line,
                    message: format!(
                        "allowlist entry `{} | {} | {}` no longer matches any finding; delete it",
                        e.check, e.path_suffix, e.needle
                    ),
                    excerpt: String::new(),
                    justification: None,
                });
            }
        }
        (kept, suppressed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(check: &str, file: &str, excerpt: &str) -> Finding {
        Finding {
            check: check.into(),
            file: file.into(),
            line: 10,
            message: "m".into(),
            excerpt: excerpt.into(),
            justification: None,
        }
    }

    #[test]
    fn matching_entry_suppresses_and_carries_justification() {
        let al = Allowlist::parse(
            "epi-lint.allow",
            "DET-TIME | src/scan.rs | Instant::now | progress reporting only\n",
        )
        .unwrap();
        let (kept, supp) = al.apply(vec![finding(
            "DET-TIME",
            "crates/core/src/scan.rs",
            "let t0 = Instant::now();",
        )]);
        assert!(kept.is_empty());
        assert_eq!(supp.len(), 1);
        assert_eq!(
            supp[0].justification.as_deref(),
            Some("progress reporting only")
        );
    }

    #[test]
    fn unused_entry_becomes_a_finding() {
        let al = Allowlist::parse("epi-lint.allow", "DET-TIME | gone.rs | x | stale\n").unwrap();
        let (kept, _) = al.apply(vec![]);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].check, "ALLOW-UNUSED");
        assert_eq!(kept[0].line, 1);
    }

    #[test]
    fn wrong_check_or_path_does_not_suppress() {
        let al = Allowlist::parse("a", "DET-TIME | scan.rs | Instant | why\n").unwrap();
        let (kept, supp) = al.apply(vec![finding("DET-HASH-ITER", "scan.rs", "Instant::now()")]);
        assert_eq!(kept.len(), 2); // the finding + the unused entry
        assert!(supp.is_empty());
    }

    #[test]
    fn malformed_line_is_an_error() {
        assert!(Allowlist::parse("a", "DET-TIME | only-two\n").is_err());
        assert!(Allowlist::parse("a", "A | b | c | \n").is_err());
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let al = Allowlist::parse("a", "# header\n\n  # indented\n").unwrap();
        assert!(al.entries.is_empty());
    }
}
