//! Per-file analysis context shared by every check: significant tokens,
//! `#[cfg(test)]` / `#[test]` regions, function spans, and attribute
//! attachment.

use crate::lexer::{Kind, Lexed, Tok};

/// One function item: name, the byte where its `fn` keyword starts, its
/// body's byte span, and the `#[target_feature(enable = "…")]` features
/// attached to it (empty when none).
#[derive(Debug)]
pub struct FnSpan {
    pub name: String,
    pub start: usize,
    pub body: (usize, usize),
    pub target_features: Vec<String>,
}

/// A lexed source file plus the derived structure the checks share.
pub struct SourceFile {
    /// Repo-relative path with forward slashes.
    pub path: String,
    pub text: String,
    pub lx: Lexed,
    /// Significant tokens: everything except comments.
    pub sig: Vec<Tok>,
    /// Byte ranges of test-only code: `#[cfg(test)] mod …` bodies and
    /// `#[test] fn` bodies.
    pub test_regions: Vec<(usize, usize)>,
    pub fns: Vec<FnSpan>,
}

impl SourceFile {
    pub fn new(path: String, text: String) -> SourceFile {
        let lx = Lexed::lex(&text);
        let sig: Vec<Tok> = lx
            .toks
            .iter()
            .copied()
            .filter(|t| !matches!(t.kind, Kind::LineComment | Kind::BlockComment))
            .collect();
        let mut f = SourceFile {
            path,
            text,
            lx,
            sig,
            test_regions: Vec::new(),
            fns: Vec::new(),
        };
        f.find_structure();
        f
    }

    pub fn tok_text(&self, t: Tok) -> &str {
        &self.text[t.start..t.end]
    }

    /// Is this significant-token index an identifier with this text?
    pub fn is_ident(&self, i: usize, text: &str) -> bool {
        self.sig
            .get(i)
            .is_some_and(|t| t.kind == Kind::Ident && self.tok_text(*t) == text)
    }

    pub fn is_punct(&self, i: usize, ch: char) -> bool {
        self.sig
            .get(i)
            .is_some_and(|t| t.kind == Kind::Punct && self.tok_text(*t).starts_with(ch))
    }

    pub fn in_test(&self, byte: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(s, e)| byte >= s && byte < e)
    }

    pub fn line_text(&self, line: usize) -> &str {
        let (s, e) = self.lx.line_span(line);
        self.text[s..e.min(self.text.len())].trim_end()
    }

    /// Innermost function span containing `byte`.
    pub fn enclosing_fn(&self, byte: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| byte >= f.start && byte < f.body.1)
            .min_by_key(|f| f.body.1 - f.start)
    }

    /// Index of the significant token matching the closing brace for the
    /// opening brace at sig index `open`.
    pub fn match_brace(&self, open: usize) -> Option<usize> {
        let mut depth = 0i64;
        for i in open..self.sig.len() {
            if self.sig[i].kind == Kind::Punct {
                match self.tok_text(self.sig[i]) {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            return Some(i);
                        }
                    }
                    _ => {}
                }
            }
        }
        None
    }

    /// Walk items once, attaching attributes, recording test regions and
    /// function spans.
    fn find_structure(&mut self) {
        // A `#[…]` attribute starting at sig index i: returns (index past
        // the closing `]`, raw attribute text).
        let attr_at = |i: usize| -> Option<(usize, String)> {
            if !self.is_punct(i, '#') || !self.is_punct(i + 1, '[') {
                return None;
            }
            let mut depth = 0i64;
            let mut j = i + 1;
            while j < self.sig.len() {
                let t = self.tok_text(self.sig[j]);
                if self.sig[j].kind == Kind::Punct {
                    if t == "[" {
                        depth += 1;
                    } else if t == "]" {
                        depth -= 1;
                        if depth == 0 {
                            let text = self.text[self.sig[i].start..self.sig[j].end].to_string();
                            return Some((j + 1, text));
                        }
                    }
                }
                j += 1;
            }
            None
        };

        let mut pending: Vec<String> = Vec::new();
        let mut fns = Vec::new();
        let mut test_regions = Vec::new();
        let mut i = 0;
        while i < self.sig.len() {
            if let Some((next, text)) = attr_at(i) {
                pending.push(text);
                i = next;
                continue;
            }
            let tok = self.sig[i];
            let text = self.tok_text(tok);
            if tok.kind == Kind::Ident {
                match text {
                    // modifiers that may sit between attributes and the item
                    "pub" | "unsafe" | "const" | "extern" | "async" | "crate" | "in" => {
                        i += 1;
                        continue;
                    }
                    "fn" => {
                        let name = self
                            .sig
                            .get(i + 1)
                            .filter(|t| t.kind == Kind::Ident)
                            .map(|t| self.tok_text(*t).to_string())
                            .unwrap_or_default();
                        // body: first `{` at zero paren/bracket depth
                        // (stop at `;` — trait method without a body)
                        let mut j = i + 2;
                        let mut depth = 0i64;
                        let mut body = None;
                        while j < self.sig.len() {
                            let t = self.tok_text(self.sig[j]);
                            if self.sig[j].kind == Kind::Punct {
                                match t {
                                    "(" | "[" => depth += 1,
                                    ")" | "]" => depth -= 1,
                                    "{" if depth == 0 => {
                                        body = Some(j);
                                        break;
                                    }
                                    ";" if depth == 0 => break,
                                    _ => {}
                                }
                            }
                            j += 1;
                        }
                        if let Some(open) = body {
                            if let Some(close) = self.match_brace(open) {
                                let span = FnSpan {
                                    name,
                                    start: tok.start,
                                    body: (self.sig[open].start, self.sig[close].end),
                                    target_features: pending
                                        .iter()
                                        .filter_map(|a| parse_target_features(a))
                                        .flatten()
                                        .collect(),
                                };
                                if pending.iter().any(|a| attr_is_test(a)) {
                                    test_regions.push(span.body);
                                }
                                fns.push(span);
                            }
                        }
                        pending.clear();
                        i += 1;
                        continue;
                    }
                    "mod" => {
                        if pending.iter().any(|a| attr_is_cfg_test(a)) {
                            let mut j = i + 1;
                            while j < self.sig.len()
                                && !self.is_punct(j, '{')
                                && !self.is_punct(j, ';')
                            {
                                j += 1;
                            }
                            if self.is_punct(j, '{') {
                                if let Some(close) = self.match_brace(j) {
                                    test_regions.push((self.sig[j].start, self.sig[close].end));
                                }
                            }
                        }
                        pending.clear();
                        i += 1;
                        continue;
                    }
                    _ => {}
                }
            }
            pending.clear();
            i += 1;
        }
        self.fns = fns;
        self.test_regions = test_regions;
    }
}

fn attr_is_cfg_test(attr: &str) -> bool {
    attr.contains("cfg") && attr.contains("test")
}

fn attr_is_test(attr: &str) -> bool {
    let inner = attr.trim_start_matches("#[").trim_end_matches(']').trim();
    inner == "test"
}

/// Extract the feature list from `#[target_feature(enable = "a,b")]`.
fn parse_target_features(attr: &str) -> Option<Vec<String>> {
    if !attr.contains("target_feature") {
        return None;
    }
    let q0 = attr.find('"')? + 1;
    let q1 = attr[q0..].find('"')? + q0;
    Some(
        attr[q0..q1]
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_mod_is_a_test_region() {
        let src = "fn a() { work(); }\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\n";
        let f = SourceFile::new("x.rs".into(), src.into());
        let unwrap_at = src.find("unwrap").unwrap();
        assert!(f.in_test(unwrap_at));
        assert!(!f.in_test(src.find("work").unwrap()));
    }

    #[test]
    fn test_fn_outside_mod_is_a_test_region() {
        let src = "#[test]\nfn t() { y.unwrap(); }\nfn real() { z(); }\n";
        let f = SourceFile::new("x.rs".into(), src.into());
        assert!(f.in_test(src.find("unwrap").unwrap()));
        assert!(!f.in_test(src.find("z()").unwrap()));
    }

    #[test]
    fn target_features_attach_to_the_following_fn() {
        let src = r#"
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,popcnt")]
#[inline]
unsafe fn fast(x: u64) -> u32 { x.count_ones() }
fn plain() {}
"#;
        let f = SourceFile::new("x.rs".into(), src.into());
        let fast = f.fns.iter().find(|f| f.name == "fast").unwrap();
        assert_eq!(fast.target_features, ["avx2", "popcnt"]);
        let plain = f.fns.iter().find(|f| f.name == "plain").unwrap();
        assert!(plain.target_features.is_empty());
    }

    #[test]
    fn enclosing_fn_picks_the_innermost() {
        let src = "fn outer() { fn inner() { mark(); } }";
        let f = SourceFile::new("x.rs".into(), src.into());
        let at = src.find("mark").unwrap();
        assert_eq!(f.enclosing_fn(at).unwrap().name, "inner");
    }
}
