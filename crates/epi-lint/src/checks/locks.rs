//! Lock discipline.
//!
//! * `LOCK-RAW-UNWRAP` — raw `.lock().unwrap()` / `.lock().expect(…)`
//!   turns a poisoned mutex into a permanent crash loop. The engine and
//!   coordinator recover from poisoning through one designated helper
//!   (`lock()` → `unwrap_or_else(PoisonError::into_inner)`); every other
//!   acquisition must go through it.
//! * `LOCK-ORDER` — two mutexes acquired in opposite orders in two
//!   functions is a deadlock waiting for the right interleaving; the
//!   check derives per-function acquisition spans and reports inverted
//!   pairs and re-acquisition of a mutex already held.

use super::{finding, punct2, receiver_last_ident, Tree};
use crate::lexer::Kind;
use crate::source::SourceFile;
use crate::Finding;
use std::collections::BTreeMap;

pub fn run(tree: &Tree, out: &mut Vec<Finding>) {
    for f in &tree.files {
        raw_unwrap(f, out);
    }
    lock_order(tree, out);
}

// ---------------------------------------------------------- raw unwrap

fn raw_unwrap(f: &SourceFile, out: &mut Vec<Finding>) {
    for (i, t) in f.sig.iter().enumerate() {
        // `. lock ( ) . unwrap|expect`
        if t.kind != Kind::Punct || f.tok_text(*t) != "." {
            continue;
        }
        if f.is_ident(i + 1, "lock")
            && f.is_punct(i + 2, '(')
            && f.is_punct(i + 3, ')')
            && f.is_punct(i + 4, '.')
            && (f.is_ident(i + 5, "unwrap") || f.is_ident(i + 5, "expect"))
        {
            out.push(finding(
                f,
                t.start,
                "LOCK-RAW-UNWRAP",
                "raw `.lock().unwrap()`; use the poisoning-recovery helper so a panicked \
                 worker cannot wedge every later request"
                    .to_string(),
            ));
        }
    }
}

// ---------------------------------------------------------- lock order

/// One acquisition inside a function: which mutex, where, and the byte
/// up to which the guard is (approximately) held.
struct Acq {
    mutex: String,
    at: usize,
    until: usize,
}

fn lock_order(tree: &Tree, out: &mut Vec<Finding>) {
    // mutex names are collected per file but compared globally; the
    // engine/coordinator field names are distinct so this stays precise
    let mut edges: BTreeMap<(String, String), (String, usize)> = BTreeMap::new();
    let mut order_findings: Vec<Finding> = Vec::new();
    for f in &tree.files {
        let mutexes = mutex_names(f);
        if mutexes.is_empty() {
            continue;
        }
        for fx in &f.fns {
            let acqs = acquisitions(f, fx.body, &mutexes);
            for (ai, a) in acqs.iter().enumerate() {
                for b in &acqs[ai + 1..] {
                    if b.at > a.at && b.at < a.until {
                        if b.mutex == a.mutex {
                            order_findings.push(finding(
                                f,
                                b.at,
                                "LOCK-ORDER",
                                format!(
                                    "`{}` re-acquired while already held in `{}`; \
                                     self-deadlock",
                                    a.mutex, fx.name
                                ),
                            ));
                        } else {
                            edges
                                .entry((a.mutex.clone(), b.mutex.clone()))
                                .or_insert_with(|| (f.path.clone(), b.at));
                        }
                    }
                }
            }
        }
    }
    // inverted pairs across the whole tree
    for ((a, b), (path, at)) in &edges {
        if a < b {
            if let Some((path2, _)) = edges.get(&(b.clone(), a.clone())) {
                if let Some(f) = tree.files.iter().find(|f| &f.path == path) {
                    order_findings.push(finding(
                        f,
                        *at,
                        "LOCK-ORDER",
                        format!(
                            "lock order inversion: `{a}` then `{b}` here, but `{b}` then \
                             `{a}` in {path2}"
                        ),
                    ));
                }
            }
        }
    }
    out.append(&mut order_findings);
}

/// Names bound to a `Mutex` in this file: `name: Mutex<…>` /
/// `name: Arc<Mutex<…>>` field declarations and `let name = Mutex::new`.
fn mutex_names(f: &SourceFile) -> Vec<String> {
    let mut names = Vec::new();
    for (i, t) in f.sig.iter().enumerate() {
        if t.kind != Kind::Ident || f.tok_text(*t) != "Mutex" {
            continue;
        }
        let mut k = i;
        let mut bind = None;
        while k > 0 {
            k -= 1;
            let tok = f.sig[k];
            let tt = f.tok_text(tok);
            match tok.kind {
                Kind::Punct => match tt {
                    ":" => {
                        let part_of_path =
                            punct2(f, k, ':', ':') || (k > 0 && punct2(f, k - 1, ':', ':'));
                        if !part_of_path {
                            bind = Some(k);
                            break;
                        }
                    }
                    "=" => {
                        bind = Some(k);
                        break;
                    }
                    "<" | "&" | ">" => {}
                    _ => break,
                },
                Kind::Ident => {} // wrapper types / path segments (Arc, std, sync…)
                _ => break,
            }
        }
        if let Some(b) = bind {
            if let Some(name_tok) = f.sig.get(b.wrapping_sub(1)) {
                if name_tok.kind == Kind::Ident {
                    let name = f.tok_text(*name_tok).to_string();
                    if name != "mut" && !names.contains(&name) {
                        names.push(name);
                    }
                }
            }
        }
    }
    names
}

/// Acquisitions in a fn body: `recv.lock()` method calls and
/// `lock(&recv)` helper calls whose receiver's last identifier is a
/// known mutex name. Guards bound with `let` are held to the end of the
/// enclosing block (or an explicit `drop(guard)`); temporaries to the
/// end of the statement.
fn acquisitions(f: &SourceFile, body: (usize, usize), mutexes: &[String]) -> Vec<Acq> {
    let mut acqs = Vec::new();
    for (i, t) in f.sig.iter().enumerate() {
        if t.start < body.0 || t.start >= body.1 {
            continue;
        }
        if t.kind != Kind::Ident || f.tok_text(*t) != "lock" || !f.is_punct(i + 1, '(') {
            continue;
        }
        let method_call = i > 0 && f.is_punct(i - 1, '.');
        let mutex = if method_call {
            receiver_last_ident(f, i - 1).map(str::to_string)
        } else {
            // helper form: last ident inside `lock( … )`
            let mut j = i + 2;
            let mut last = None;
            let mut depth = 1i64;
            while j < f.sig.len() && depth > 0 {
                if f.sig[j].kind == Kind::Punct {
                    match f.tok_text(f.sig[j]) {
                        "(" => depth += 1,
                        ")" => depth -= 1,
                        _ => {}
                    }
                } else if f.sig[j].kind == Kind::Ident && depth == 1 {
                    last = Some(f.tok_text(f.sig[j]).to_string());
                }
                j += 1;
            }
            last
        };
        let Some(mutex) = mutex else { continue };
        if !mutexes.iter().any(|m| m == &mutex) {
            continue;
        }
        let stmt_anchor = if method_call { i - 1 } else { i };
        let until = held_until(f, stmt_anchor, body.1);
        acqs.push(Acq {
            mutex,
            at: t.start,
            until,
        });
    }
    acqs
}

/// Byte up to which the guard from the acquisition anchored at sig index
/// `anchor` is held.
fn held_until(f: &SourceFile, anchor: usize, body_end: usize) -> usize {
    // was it `let g = …`? walk back to the statement start
    let mut k = anchor;
    let mut guard: Option<String> = None;
    while k > 0 {
        k -= 1;
        let tok = f.sig[k];
        let tt = f.tok_text(tok);
        if tok.kind == Kind::Punct && matches!(tt, ";" | "{" | "}") {
            break;
        }
        if tok.kind == Kind::Ident && tt == "let" {
            // the bound name: first ident after `let` (skip `mut`)
            let mut n = k + 1;
            if f.is_ident(n, "mut") {
                n += 1;
            }
            if let Some(name_tok) = f.sig.get(n) {
                if name_tok.kind == Kind::Ident {
                    guard = Some(f.tok_text(*name_tok).to_string());
                }
            }
            break;
        }
    }
    match guard {
        Some(g) => {
            // held to enclosing-block close or `drop(g)`
            let mut depth = 0i64;
            for j in anchor..f.sig.len() {
                let tok = f.sig[j];
                if tok.start >= body_end {
                    break;
                }
                if tok.kind == Kind::Punct {
                    match f.tok_text(tok) {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth < 0 {
                                return tok.start;
                            }
                        }
                        _ => {}
                    }
                }
                if tok.kind == Kind::Ident
                    && f.tok_text(tok) == "drop"
                    && f.is_punct(j + 1, '(')
                    && f.is_ident(j + 2, &g)
                    && f.is_punct(j + 3, ')')
                {
                    return tok.start;
                }
            }
            body_end
        }
        None => {
            // temporary: held to the end of the statement
            let mut depth = 0i64;
            for j in anchor..f.sig.len() {
                let tok = f.sig[j];
                if tok.start >= body_end {
                    break;
                }
                if tok.kind == Kind::Punct {
                    match f.tok_text(tok) {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        ";" if depth <= 0 => return tok.start,
                        _ => {}
                    }
                }
            }
            body_end
        }
    }
}
