//! Determinism lint.
//!
//! * `DET-HASH-ITER` — iterating a `HashMap`/`HashSet` in a file on a
//!   merge/checkpoint/codec/report path. Hash iteration order varies per
//!   process, so anything it feeds (merged candidate lists, checkpoint
//!   records, wire replies) silently loses bit-reproducibility unless the
//!   result is sorted afterwards — which is exactly what an allowlist
//!   justification must say.
//! * `DET-TIME` — `SystemTime::now` / `Instant::now` inside scan or
//!   merge logic. Wall-clock reads are fine in deadline/backoff modules
//!   (out of scope) but a timestamp flowing into results or checkpoints
//!   breaks replay.
//! * `DET-FLOAT-FMT` — decimal float formatting (`{:.…}`, `{:e}`) or
//!   `f64`/`f32` text parsing in codec files outside the exact
//!   f64-bits helpers. Checkpoints round-trip floats as hex bit
//!   patterns; a decimal detour quietly rounds.

use super::{finding, punct2, Tree};
use crate::lexer::Kind;
use crate::source::SourceFile;
use crate::Finding;

/// Files whose output must be byte-stable: merge, k-way, result
/// assembly, codecs, checkpoints, and the engine/coordinator paths that
/// feed them.
const HASH_ITER_SCOPE: &[&str] = &[
    "crates/core/src/result.rs",
    "crates/core/src/shard.rs",
    "crates/core/src/kway.rs",
    "crates/epi-server/src/codec.rs",
    "crates/epi-server/src/engine.rs",
    "crates/epi-coord/src/coord.rs",
    "crates/epi-coord/src/checkpoint.rs",
];

/// Scan/merge logic where wall-clock reads are suspect. Deadline and
/// backoff modules (server loop, client retries, coordinator polling)
/// are deliberately not listed.
const TIME_SCOPE_PREFIXES: &[&str] = &["crates/core/src/", "crates/bitgenome/src/"];
const TIME_SCOPE_FILES: &[&str] = &[
    "crates/epi-server/src/codec.rs",
    "crates/epi-server/src/engine.rs",
    "crates/epi-coord/src/checkpoint.rs",
];

/// Codec/spec files where floats must travel as exact bits.
const FLOAT_SCOPE: &[&str] = &[
    "crates/epi-server/src/codec.rs",
    "crates/epi-server/src/spec.rs",
    "crates/epi-coord/src/checkpoint.rs",
];

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
];

pub fn run(tree: &Tree, out: &mut Vec<Finding>) {
    for f in &tree.files {
        if HASH_ITER_SCOPE.iter().any(|s| f.path.ends_with(s)) {
            hash_iter(f, out);
        }
        let in_time_scope = TIME_SCOPE_PREFIXES
            .iter()
            .any(|p| f.path.starts_with(p) || f.path.contains(&format!("/{p}")))
            || TIME_SCOPE_FILES.iter().any(|s| f.path.ends_with(s));
        if in_time_scope {
            time_now(f, out);
        }
        if FLOAT_SCOPE.iter().any(|s| f.path.ends_with(s)) {
            float_fmt(f, out);
        }
    }
}

/// Names in this file bound to a `HashMap`/`HashSet` (field decls and
/// `let` bindings). Over-collection is harmless: a name only fires when
/// it is iterated.
fn hash_typed_names(f: &SourceFile) -> Vec<String> {
    let mut names = Vec::new();
    for (i, t) in f.sig.iter().enumerate() {
        if t.kind != Kind::Ident {
            continue;
        }
        let text = f.tok_text(*t);
        if text != "HashMap" && text != "HashSet" {
            continue;
        }
        // walk back over type-path noise (`std::collections::`, wrapper
        // generics like `Arc<Mutex<…>`) to the `name :` or `name =`
        let mut j = i;
        while j > 0 {
            j -= 1;
            let tok = f.sig[j];
            let tt = f.tok_text(tok);
            match tok.kind {
                Kind::Punct if tt == ":" || tt == "<" || tt == "&" => continue,
                Kind::Ident if tt == "mut" || tt == "dyn" => continue,
                Kind::Ident => continue,
                _ => break,
            }
        }
        // re-walk precisely: find the nearest preceding `:` or `=` not
        // crossing a statement/field boundary, then the ident before it
        let mut k = i;
        let mut bind = None;
        while k > 0 {
            k -= 1;
            let tok = f.sig[k];
            let tt = f.tok_text(tok);
            if tok.kind == Kind::Punct {
                match tt {
                    ":" | "=" => {
                        // `::` path separator is two adjacent colons
                        let part_of_path = tt == ":"
                            && (punct2(f, k, ':', ':') || (k > 0 && punct2(f, k - 1, ':', ':')));
                        if !part_of_path {
                            bind = Some(k);
                            break;
                        }
                    }
                    "," | ";" | "{" | "}" | "(" => break,
                    _ => {}
                }
            }
        }
        if let Some(b) = bind {
            if let Some(name_tok) = f.sig.get(b.wrapping_sub(1)) {
                if name_tok.kind == Kind::Ident {
                    let name = f.tok_text(*name_tok).to_string();
                    if !names.contains(&name) {
                        names.push(name);
                    }
                }
            }
        }
    }
    names
}

fn hash_iter(f: &SourceFile, out: &mut Vec<Finding>) {
    let names = hash_typed_names(f);
    if names.is_empty() {
        return;
    }
    for (i, t) in f.sig.iter().enumerate() {
        if t.kind != Kind::Ident || !names.iter().any(|n| n == f.tok_text(*t)) {
            continue;
        }
        let name = f.tok_text(*t);
        // `map.iter()` / `map.values_mut()` …
        let method_iter = f.is_punct(i + 1, '.')
            && f.sig
                .get(i + 2)
                .is_some_and(|m| m.kind == Kind::Ident && ITER_METHODS.contains(&f.tok_text(*m)))
            && f.is_punct(i + 3, '(');
        // `for x in &map {` — name directly followed by the loop body
        let for_iter =
            f.is_punct(i + 1, '{') && (1..=6).any(|back| i >= back && f.is_ident(i - back, "in"));
        if method_iter || for_iter {
            out.push(finding(
                f,
                t.start,
                "DET-HASH-ITER",
                format!(
                    "iteration over hash-ordered `{name}` on a merge/codec/report path; \
                     hash order varies per process — sort the result or justify in the allowlist"
                ),
            ));
        }
    }
}

fn time_now(f: &SourceFile, out: &mut Vec<Finding>) {
    for (i, t) in f.sig.iter().enumerate() {
        if t.kind != Kind::Ident {
            continue;
        }
        let text = f.tok_text(*t);
        if (text == "SystemTime" || text == "Instant")
            && punct2(f, i + 1, ':', ':')
            && f.is_ident(i + 3, "now")
            && !f.in_test(t.start)
        {
            out.push(finding(
                f,
                t.start,
                "DET-TIME",
                format!(
                    "`{text}::now` in scan/merge logic; wall-clock reads belong in \
                     deadline/backoff modules, not in anything feeding results or checkpoints"
                ),
            ));
        }
    }
}

fn float_fmt(f: &SourceFile, out: &mut Vec<Finding>) {
    for (i, t) in f.sig.iter().enumerate() {
        // inside the exact-bits helpers decimal text never appears; any
        // fn whose name mentions `bits` is the sanctioned escape hatch
        let in_bits_helper = f
            .enclosing_fn(t.start)
            .is_some_and(|fx| fx.name.contains("bits"));
        if in_bits_helper || f.in_test(t.start) {
            continue;
        }
        match t.kind {
            Kind::Str => {
                let c = super::str_content(f.tok_text(*t));
                if c.contains("{:.") || c.contains("{:e") || c.contains("{:+e") {
                    out.push(finding(
                        f,
                        t.start,
                        "DET-FLOAT-FMT",
                        "decimal float formatting in a codec file; floats must round-trip \
                         as exact f64 bit patterns"
                            .to_string(),
                    ));
                }
            }
            Kind::Ident => {
                let text = f.tok_text(*t);
                // `parse::<f64>` / `f64::from_str`
                let parse_turbofish = text == "parse"
                    && punct2(f, i + 1, ':', ':')
                    && f.is_punct(i + 3, '<')
                    && (f.is_ident(i + 4, "f64") || f.is_ident(i + 4, "f32"));
                let from_str = (text == "f64" || text == "f32")
                    && punct2(f, i + 1, ':', ':')
                    && f.is_ident(i + 3, "from_str");
                if parse_turbofish || from_str {
                    out.push(finding(
                        f,
                        t.start,
                        "DET-FLOAT-FMT",
                        "decimal float parsing in a codec file; parse the hex bit pattern \
                         via the exact-bits helpers instead"
                            .to_string(),
                    ));
                }
            }
            _ => {}
        }
    }
}
