//! Panic-path audit.
//!
//! The server and coordinator hold long-lived state behind request
//! loops; an unplanned panic either poisons that state or (in a worker)
//! silently drops a shard. Every potential panic site on a request path
//! must therefore be *inventoried*: each `unwrap`/`expect`/`panic!`/
//! index expression in `epi-server` and `epi-coord` non-test code is a
//! finding, and the checked-in allowlist carries a one-line
//! justification per accepted site (invariant, bounds already checked,
//! deliberate fault injection, …).
//!
//! * `PANIC-UNWRAP` — `.unwrap()` on a request path.
//! * `PANIC-EXPECT` — `.expect(…)` on a request path.
//! * `PANIC-PANIC` — explicit `panic!` on a request path.
//! * `PANIC-INDEX` — `x[…]` indexing (can panic on out-of-bounds).

use super::{finding, Tree};
use crate::lexer::Kind;
use crate::source::SourceFile;
use crate::Finding;

const SCOPE: &[&str] = &["crates/epi-server/src/", "crates/epi-coord/src/"];

/// Keywords that legitimately precede a `[` without forming an index
/// expression (`&mut [T]`, `match x { [a, b] => … }`, `return [x]`, …).
const NON_INDEX_PREV: &[&str] = &[
    "mut", "ref", "in", "as", "return", "else", "match", "if", "while", "loop", "dyn", "impl",
    "where", "move", "box", "let", "const", "static", "type", "fn", "pub", "use", "mod", "break",
    "continue", "unsafe", "extern",
];

pub fn run(tree: &Tree, out: &mut Vec<Finding>) {
    for f in &tree.files {
        if !SCOPE.iter().any(|p| f.path.contains(p)) {
            continue;
        }
        scan(f, out);
    }
}

fn scan(f: &SourceFile, out: &mut Vec<Finding>) {
    for (i, t) in f.sig.iter().enumerate() {
        if f.in_test(t.start) {
            continue;
        }
        match t.kind {
            Kind::Punct if f.tok_text(*t) == "." => {
                let method = match f.sig.get(i + 1) {
                    Some(m) if m.kind == Kind::Ident && f.is_punct(i + 2, '(') => f.tok_text(*m),
                    _ => continue,
                };
                let check = match method {
                    "unwrap" => "PANIC-UNWRAP",
                    "expect" => "PANIC-EXPECT",
                    _ => continue,
                };
                out.push(finding(
                    f,
                    t.start,
                    check,
                    format!(
                        "`.{method}()` on a request path; justify in the allowlist or return \
                         an error"
                    ),
                ));
            }
            Kind::Ident if f.tok_text(*t) == "panic" && f.is_punct(i + 1, '!') => {
                out.push(finding(
                    f,
                    t.start,
                    "PANIC-PANIC",
                    "explicit `panic!` on a request path; justify in the allowlist or return \
                     an error"
                        .to_string(),
                ));
            }
            Kind::Punct if f.tok_text(*t) == "[" => {
                let Some(prev) = i.checked_sub(1).and_then(|p| f.sig.get(p)) else {
                    continue;
                };
                let indexes = match prev.kind {
                    Kind::Ident => !NON_INDEX_PREV.contains(&f.tok_text(*prev)),
                    Kind::Punct => matches!(f.tok_text(*prev), ")" | "]"),
                    _ => false,
                };
                if indexes {
                    out.push(finding(
                        f,
                        t.start,
                        "PANIC-INDEX",
                        "index expression on a request path (panics when out of bounds); \
                         justify in the allowlist or use `.get()`"
                            .to_string(),
                    ));
                }
            }
            _ => {}
        }
    }
}
