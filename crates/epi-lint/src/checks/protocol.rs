//! Wire-protocol conformance.
//!
//! The protocol lives in four places that drift independently: the
//! server dispatch (`server.rs`), the client wrappers (`client.rs`), the
//! README wire-protocol table, and the `epi-server` crate docs. Spec
//! `key=` fields likewise live in the parser, the emitter, and the
//! README. Checkpoint record kinds live in an encoder and a decoder that
//! must stay symmetric.
//!
//! * `PROTO-VERB` — a verb dispatched, wrapped, or documented in one
//!   place but not the others.
//! * `PROTO-KEY` — a spec `key=` parsed but never emitted, emitted but
//!   never parsed, or undocumented.
//! * `PROTO-RECORD` — a checkpoint record kind written by the encoder
//!   with no decoder arm (or vice versa): a checkpoint that cannot be
//!   resumed.

use super::{punct2, str_content, Tree};
use crate::lexer::Kind;
use crate::source::SourceFile;
use crate::Finding;
use std::collections::BTreeMap;

/// Occurrence map: item → (file, 1-based line of first sighting).
type Sites = BTreeMap<String, (String, usize)>;

pub fn run(tree: &Tree, out: &mut Vec<Finding>) {
    verbs(tree, out);
    spec_keys(tree, out);
    for suffix in ["epi-server/src/codec.rs", "epi-coord/src/checkpoint.rs"] {
        if let Some(f) = tree.file(suffix) {
            record_symmetry(f, out);
        }
    }
}

fn is_verb(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_uppercase())
        && s.chars().all(|c| c.is_ascii_uppercase() || c == '_')
}

fn is_key(s: &str) -> bool {
    !s.is_empty() && s.chars().all(|c| c.is_ascii_lowercase() || c == '_')
}

fn first_word(s: &str) -> &str {
    s.split_whitespace().next().unwrap_or("")
}

fn note(map: &mut Sites, item: &str, file: &str, line: usize) {
    map.entry(item.to_string())
        .or_insert_with(|| (file.to_string(), line));
}

fn report_diffs(sets: &[(&str, &Sites)], check: &str, what: &str, out: &mut Vec<Finding>) {
    let mut universe: Vec<&String> = Vec::new();
    for (_, s) in sets {
        for k in s.keys() {
            if !universe.contains(&k) {
                universe.push(k);
            }
        }
    }
    universe.sort();
    for item in universe {
        let missing: Vec<&str> = sets
            .iter()
            .filter(|(_, s)| !s.contains_key(item))
            .map(|(name, _)| *name)
            .collect();
        if missing.is_empty() {
            continue;
        }
        // anchor at the first source that has it
        let (file, line) = sets
            .iter()
            .find_map(|(_, s)| s.get(item))
            .cloned()
            .expect("item came from one of the sets");
        out.push(Finding {
            check: check.to_string(),
            file,
            line,
            message: format!("{what} `{item}` missing from {}", missing.join(", ")),
            excerpt: item.clone(),
            justification: None,
        });
    }
}

// -------------------------------------------------------------- verbs

fn verbs(tree: &Tree, out: &mut Vec<Finding>) {
    let Some(server) = tree.file("epi-server/src/server.rs") else {
        return; // fixture trees without a server skip protocol checks
    };
    let mut server_set = Sites::new();
    for (i, t) in server.sig.iter().enumerate() {
        if t.kind != Kind::Str {
            continue;
        }
        let c = str_content(server.tok_text(*t));
        if is_verb(first_word(c))
            && (punct2(server, i + 1, '=', '>') || server.is_punct(i + 1, '|'))
        {
            note(
                &mut server_set,
                first_word(c),
                &server.path,
                server.lx.line_of(t.start),
            );
        }
    }

    let mut client_set = Sites::new();
    if let Some(client) = tree.file("epi-server/src/client.rs") {
        for (i, t) in client.sig.iter().enumerate() {
            if t.kind != Kind::Ident
                || client.tok_text(*t) != "send"
                || !client.is_punct(i + 1, '(')
            {
                continue;
            }
            // everything inside send(…) — format! nesting included
            let mut depth = 0i64;
            let mut j = i + 1;
            while j < client.sig.len() {
                if client.sig[j].kind == Kind::Punct {
                    match client.tok_text(client.sig[j]) {
                        "(" => depth += 1,
                        ")" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                } else if client.sig[j].kind == Kind::Str {
                    let w = first_word(str_content(client.tok_text(client.sig[j])));
                    if is_verb(w) {
                        note(
                            &mut client_set,
                            w,
                            &client.path,
                            client.lx.line_of(client.sig[j].start),
                        );
                    }
                }
                j += 1;
            }
        }
    }

    let mut readme_set = Sites::new();
    if let Some((path, text)) = &tree.readme {
        for (verb, line) in table_verbs(text) {
            note(&mut readme_set, &verb, path, line);
        }
    }

    let mut doc_set = Sites::new();
    if let Some(lib) = tree.file("epi-server/src/lib.rs") {
        // crate-doc table rows: `//! | `VERB …` | … |`
        let doc_text: String = lib
            .lx
            .toks
            .iter()
            .filter(|t| t.kind == Kind::LineComment)
            .map(|t| {
                let line = lib.lx.line_of(t.start);
                let body = lib
                    .tok_text(*t)
                    .trim_start_matches('/')
                    .trim_start_matches('!');
                format!("{line}\u{1}{body}\n")
            })
            .collect();
        for row in doc_text.lines() {
            let Some((line_no, body)) = row.split_once('\u{1}') else {
                continue;
            };
            if let Some(verb) = row_verb(body) {
                note(&mut doc_set, &verb, &lib.path, line_no.parse().unwrap_or(1));
            }
        }
    }

    report_diffs(
        &[
            ("server dispatch", &server_set),
            ("client wrappers", &client_set),
            ("README wire-protocol table", &readme_set),
            ("epi-server crate docs", &doc_set),
        ],
        "PROTO-VERB",
        "verb",
        out,
    );
}

/// `| \`VERB …\` | …` — the verb of one markdown table row, if any.
fn row_verb(line: &str) -> Option<String> {
    let l = line.trim();
    if !l.starts_with('|') {
        return None;
    }
    let tick0 = l.find('`')? + 1;
    let tick1 = l[tick0..].find('`')? + tick0;
    let w = first_word(&l[tick0..tick1]);
    is_verb(w).then(|| w.to_string())
}

/// Verbs from the markdown table whose header row names a `Request`
/// column: (verb, 1-based line).
fn table_verbs(text: &str) -> Vec<(String, usize)> {
    let mut found = Vec::new();
    let mut in_table = false;
    for (idx, line) in text.lines().enumerate() {
        let trimmed = line.trim_start();
        if !trimmed.starts_with('|') {
            in_table = false;
            continue;
        }
        if trimmed.contains("Request") {
            in_table = true;
            continue;
        }
        if in_table {
            if let Some(v) = row_verb(line) {
                found.push((v, idx + 1));
            }
        }
    }
    found
}

// ---------------------------------------------------------- spec keys

fn spec_keys(tree: &Tree, out: &mut Vec<Finding>) {
    let Some(spec) = tree.file("epi-server/src/spec.rs") else {
        return;
    };
    let mut parsed = Sites::new();
    let mut emitted = Sites::new();

    // parse side: string arms of `match key { … }`, skipping nested
    // matches (whose arms are *values* like "v1", not keys)
    for (i, t) in spec.sig.iter().enumerate() {
        if t.kind == Kind::Ident
            && spec.tok_text(*t) == "match"
            && spec.is_ident(i + 1, "key")
            && spec.is_punct(i + 2, '{')
        {
            if let Some(close) = spec.match_brace(i + 2) {
                let mut j = i + 3;
                while j < close {
                    if spec.is_ident(j, "match") {
                        // skip the nested match's brace span entirely
                        let mut k = j + 1;
                        while k < close && !spec.is_punct(k, '{') {
                            k += 1;
                        }
                        if let Some(inner_close) = spec.match_brace(k) {
                            j = inner_close + 1;
                            continue;
                        }
                    }
                    if spec.sig[j].kind == Kind::Str && punct2(spec, j + 1, '=', '>') {
                        let w = first_word(str_content(spec.tok_text(spec.sig[j])));
                        if is_key(w) {
                            note(
                                &mut parsed,
                                w,
                                &spec.path,
                                spec.lx.line_of(spec.sig[j].start),
                            );
                        }
                    }
                    j += 1;
                }
            }
        }
        // flag-style parse: `== "mi"`
        if t.kind == Kind::Str && i >= 2 && punct2(spec, i - 2, '=', '=') {
            let w = str_content(spec.tok_text(*t)).trim();
            if is_key(w) {
                note(&mut parsed, w, &spec.path, spec.lx.line_of(t.start));
            }
        }
        // emit side: `key=` inside any string literal, plus the bare
        // `mi` flag token
        if t.kind == Kind::Str && !spec.in_test(t.start) {
            let c = str_content(spec.tok_text(*t));
            for key in keys_in_literal(c) {
                note(&mut emitted, &key, &spec.path, spec.lx.line_of(t.start));
            }
            if c.trim() == "mi" {
                note(&mut emitted, "mi", &spec.path, spec.lx.line_of(t.start));
            }
        }
    }

    // README: the paragraph introduced by "spec keys:" up to its first
    // blank line; keys are the backticked `key=…` spans plus bare `mi`
    let mut documented = Sites::new();
    if let Some((path, text)) = &tree.readme {
        let mut in_para = false;
        for (idx, line) in text.lines().enumerate() {
            if line.contains("spec keys:") {
                in_para = true;
            } else if in_para && line.trim().is_empty() {
                break;
            }
            if !in_para {
                continue;
            }
            let mut rest = line;
            while let Some(t0) = rest.find('`') {
                let Some(t1) = rest[t0 + 1..].find('`') else {
                    break;
                };
                let span = &rest[t0 + 1..t0 + 1 + t1];
                // keys are documented as `key=<…>`; the only bare-token
                // key in the protocol is the `mi` flag
                if let Some((key, _)) = span.split_once('=') {
                    if is_key(key) {
                        note(&mut documented, key, path, idx + 1);
                    }
                } else if span == "mi" {
                    note(&mut documented, "mi", path, idx + 1);
                }
                rest = &rest[t0 + 2 + t1..];
            }
        }
    }

    report_diffs(
        &[
            ("spec parser", &parsed),
            ("spec emitter", &emitted),
            ("README spec-keys paragraph", &documented),
        ],
        "PROTO-KEY",
        "spec key",
        out,
    );
}

/// `a={…} b={…}` occurrences inside one emit literal: the words directly
/// before an `={` at a word boundary. Requiring the format placeholder
/// keeps prose like "expected key=value" out of the emitted-key set.
fn keys_in_literal(c: &str) -> Vec<String> {
    let mut keys = Vec::new();
    let bytes = c.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'=' || bytes.get(i + 1) != Some(&b'{') {
            continue;
        }
        let mut s = i;
        while s > 0 && (bytes[s - 1].is_ascii_lowercase() || bytes[s - 1] == b'_') {
            s -= 1;
        }
        if s == i {
            continue;
        }
        // word boundary on the left (start of literal or whitespace)
        if s > 0 && !bytes[s - 1].is_ascii_whitespace() {
            continue;
        }
        let key = &c[s..i];
        if is_key(key) && !keys.contains(&key.to_string()) {
            keys.push(key.to_string());
        }
    }
    keys
}

// ----------------------------------------------------- record symmetry

fn record_symmetry(f: &SourceFile, out: &mut Vec<Finding>) {
    let mut written = Sites::new();
    let mut parsed = Sites::new();
    for (i, t) in f.sig.iter().enumerate() {
        if f.in_test(t.start) {
            continue;
        }
        match t.kind {
            Kind::Ident => {
                let text = f.tok_text(*t);
                // writeln!(w, "kind …", …)
                if (text == "writeln" || text == "write")
                    && f.is_punct(i + 1, '!')
                    && f.is_punct(i + 2, '(')
                    && f.sig.get(i + 3).is_some_and(|x| x.kind == Kind::Ident)
                    && f.is_punct(i + 4, ',')
                    && f.sig.get(i + 5).is_some_and(|x| x.kind == Kind::Str)
                {
                    let s = f.sig[i + 5];
                    let w = first_word(str_content(f.tok_text(s)));
                    if is_record_kind(w) {
                        note(&mut written, w, &f.path, f.lx.line_of(s.start));
                    }
                }
                // strip_prefix("kind ")
                if text == "strip_prefix"
                    && f.is_punct(i + 1, '(')
                    && f.sig.get(i + 2).is_some_and(|x| x.kind == Kind::Str)
                {
                    let s = f.sig[i + 2];
                    let w = first_word(str_content(f.tok_text(s)));
                    if is_record_kind(w) {
                        note(&mut parsed, w, &f.path, f.lx.line_of(s.start));
                    }
                }
                // a `const NAME: &str = "…";` participates on both sides
                // (magic headers are written and matched via the const)
                if text == "const" {
                    for j in i + 1..(i + 8).min(f.sig.len()) {
                        if f.sig[j].kind == Kind::Str {
                            let w = first_word(str_content(f.tok_text(f.sig[j])));
                            if is_record_kind(w) {
                                note(&mut written, w, &f.path, f.lx.line_of(f.sig[j].start));
                                note(&mut parsed, w, &f.path, f.lx.line_of(f.sig[j].start));
                            }
                            break;
                        }
                        if f.is_punct(j, ';') {
                            break;
                        }
                    }
                }
            }
            Kind::Str => {
                let w = first_word(str_content(f.tok_text(*t)));
                if !is_record_kind(w) {
                    continue;
                }
                // match arm `"kind" =>`, `Some("kind")`, or `== "kind"`
                let arm = punct2(f, i + 1, '=', '>')
                    || (i >= 1 && f.is_punct(i - 1, '|'))
                    || (i >= 2 && f.is_ident(i - 2, "Some") && f.is_punct(i - 1, '('))
                    || (i >= 2 && punct2(f, i - 2, '=', '='));
                if arm {
                    note(&mut parsed, w, &f.path, f.lx.line_of(t.start));
                }
            }
            _ => {}
        }
    }
    report_diffs(
        &[
            ("encoder (writes)", &written),
            ("decoder (parses)", &parsed),
        ],
        "PROTO-RECORD",
        "record kind",
        out,
    );
}

fn is_record_kind(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_lowercase())
        && s.chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}
