//! Unsafe/SIMD hygiene.
//!
//! * `UNSAFE-NO-SAFETY` — every `unsafe fn` / `unsafe {}` / `unsafe impl`
//!   must carry a `// SAFETY:` comment on the same line or immediately
//!   above it (attribute lines may sit between). The SIMD kernels are
//!   the only unsafe in the tree and every contract (alignment, feature
//!   availability, in-bounds lanes) must be written down.
//! * `UNSAFE-FORBID` — every crate root except `epi-core` must carry
//!   `#![forbid(unsafe_code)]` (the core carries `#![deny(unsafe_code)]`
//!   with a module-scoped allow), so the unsafe audit surface is
//!   provably just the SIMD module.
//! * `SIMD-TF-DISPATCH` — a `#[target_feature(enable = …)]` fn may only
//!   be called from a fn whose own target features imply the callee's,
//!   or from a `match level { SimdLevel::X => … }` arm whose runtime-
//!   detected level guarantees those features. Anything else is UB on
//!   the wrong CPU.
//! * `SIMD-NONX86-ASSERT` — wildcard / non-x86 `SimdLevel` arms must
//!   `debug_assert!` so a mis-detected level is loud in debug builds
//!   instead of silently taking the scalar path.

use super::{finding, punct2, Tree};
use crate::lexer::Kind;
use crate::source::SourceFile;
use crate::Finding;
use std::collections::BTreeMap;

pub fn run(tree: &Tree, out: &mut Vec<Finding>) {
    let tf_fns = collect_target_feature_fns(tree);
    for f in &tree.files {
        unsafe_needs_safety(f, out);
        tf_dispatch(f, &tf_fns, out);
        nonx86_asserts(f, out);
        if f.path.ends_with("src/lib.rs") {
            forbid_unsafe(f, out);
        }
    }
}

// ---------------------------------------------------------------- SAFETY

fn unsafe_needs_safety(f: &SourceFile, out: &mut Vec<Finding>) {
    for t in &f.sig {
        if t.kind != Kind::Ident || f.tok_text(*t) != "unsafe" {
            continue;
        }
        if !has_safety_comment(f, t.start) {
            out.push(finding(
                f,
                t.start,
                "UNSAFE-NO-SAFETY",
                "`unsafe` without a `// SAFETY:` comment on this line or immediately above"
                    .to_string(),
            ));
        }
    }
}

/// `// SAFETY:` on the `unsafe` token's own line, or in the unbroken run
/// of comment-only / attribute-only lines directly above it. A blank
/// line or a code line ends the run.
fn has_safety_comment(f: &SourceFile, byte: usize) -> bool {
    let line = f.lx.line_of(byte);
    if f.line_text(line).contains("SAFETY") {
        return true;
    }
    let mut l = line;
    while l > 1 {
        l -= 1;
        let text = f.line_text(l).trim();
        if text.is_empty() {
            return false;
        }
        let (s, e) = f.lx.line_span(l);
        let mask_line = f.lx.mask[s..e.min(f.lx.mask.len())].trim();
        let comment_only = mask_line.is_empty(); // all tokens blanked ⇒ comments
        let attr_only = text.starts_with('#') || text == "]" || text.starts_with(")]");
        if comment_only {
            if text.contains("SAFETY") {
                return true;
            }
        } else if !attr_only {
            return false;
        }
    }
    false
}

// ---------------------------------------------------------------- forbid

fn forbid_unsafe(f: &SourceFile, out: &mut Vec<Finding>) {
    let has_gate =
        f.lx.mask.contains("forbid(unsafe_code)") || f.lx.mask.contains("deny(unsafe_code)");
    if !has_gate {
        out.push(finding(
            f,
            0,
            "UNSAFE-FORBID",
            "crate root lacks `#![forbid(unsafe_code)]` (or `#![deny(unsafe_code)]` for the \
             SIMD core); the unsafe audit surface must be explicit"
                .to_string(),
        ));
    }
}

// ------------------------------------------------------------- dispatch

/// `SimdLevel` variant → the target features its runtime detection
/// guarantees. AVX-512 levels are only ever selected when AVX2 also
/// probed true, hence the closure.
fn level_features(variant: &str) -> Vec<&'static str> {
    match variant {
        "Avx2" => vec!["avx2", "popcnt"],
        "Avx512" => vec!["avx512f", "avx512bw", "popcnt", "avx2"],
        "Avx512Vpopcnt" => vec!["avx512f", "avx512bw", "avx512vpopcntdq", "popcnt", "avx2"],
        _ => vec![], // Scalar and anything unknown guarantee nothing
    }
}

/// A caller already compiled with avx512 features implies avx2 paths are
/// sound on any CPU the caller itself can run on.
fn close_features(mut feats: Vec<String>) -> Vec<String> {
    if feats.iter().any(|f| f == "avx512f" || f == "avx512bw") && !feats.iter().any(|f| f == "avx2")
    {
        feats.push("avx2".to_string());
    }
    feats
}

fn collect_target_feature_fns(tree: &Tree) -> BTreeMap<String, Vec<String>> {
    let mut map = BTreeMap::new();
    for f in &tree.files {
        for fx in &f.fns {
            if !fx.target_features.is_empty() {
                map.insert(fx.name.clone(), fx.target_features.clone());
            }
        }
    }
    map
}

fn tf_dispatch(f: &SourceFile, tf_fns: &BTreeMap<String, Vec<String>>, out: &mut Vec<Finding>) {
    if tf_fns.is_empty() {
        return;
    }
    for (i, t) in f.sig.iter().enumerate() {
        if t.kind != Kind::Ident {
            continue;
        }
        let name = f.tok_text(*t);
        let Some(callee_feats) = tf_fns.get(name) else {
            continue;
        };
        if !f.is_punct(i + 1, '(') {
            continue;
        }
        // skip the declaration itself
        if i > 0 && f.is_ident(i - 1, "fn") {
            continue;
        }
        let Some(encl) = f.enclosing_fn(t.start) else {
            continue;
        };
        // caller's own target features imply the callee's?
        let own = close_features(encl.target_features.clone());
        if callee_feats.iter().all(|c| own.iter().any(|o| o == c)) {
            continue;
        }
        // otherwise: nearest preceding dispatch arm within this fn
        let arm = nearest_arm_features(f, encl.body.0, t.start);
        let ok = match arm {
            Some(feats) => callee_feats.iter().all(|c| feats.iter().any(|a| a == c)),
            None => false,
        };
        if !ok {
            out.push(finding(
                f,
                t.start,
                "SIMD-TF-DISPATCH",
                format!(
                    "call to `{name}` (target_feature {:?}) not guarded by a matching \
                     `SimdLevel` dispatch arm or caller target features",
                    callee_feats
                ),
            ));
        }
    }
}

/// Features guaranteed by the `SimdLevel::X =>` arm nearest before
/// `until` inside the fn body starting at `body_start`. An `|` chain
/// guarantees only the intersection; a `_ =>` guarantees nothing.
fn nearest_arm_features(f: &SourceFile, body_start: usize, until: usize) -> Option<Vec<String>> {
    let mut current: Option<Vec<String>> = None;
    let mut buffer: Vec<&str> = Vec::new();
    for (i, t) in f.sig.iter().enumerate() {
        if t.start < body_start {
            continue;
        }
        if t.start >= until {
            break;
        }
        if t.kind == Kind::Ident && f.tok_text(*t) == "SimdLevel" && punct2(f, i + 1, ':', ':') {
            if let Some(v) = f.sig.get(i + 3) {
                if v.kind == Kind::Ident {
                    buffer.push(f.tok_text(*v));
                }
            }
        }
        if punct2(f, i, '=', '>') {
            if buffer.is_empty() {
                current = None; // `_ =>` or a non-SimdLevel match arm
            } else {
                // intersection over the chain
                let mut feats: Vec<String> = level_features(buffer[0])
                    .into_iter()
                    .map(String::from)
                    .collect();
                for v in &buffer[1..] {
                    let fv = level_features(v);
                    feats.retain(|x| fv.iter().any(|y| y == x));
                }
                current = Some(feats);
            }
            buffer.clear();
        }
    }
    current
}

// ------------------------------------------------------------ non-x86

fn nonx86_asserts(f: &SourceFile, out: &mut Vec<Finding>) {
    wildcard_arms_in_simd_matches(f, out);
    cfg_not_x86_arms(f, out);
}

/// `_ =>` arms inside a `match` whose span mentions `SimdLevel` must
/// `debug_assert`.
fn wildcard_arms_in_simd_matches(f: &SourceFile, out: &mut Vec<Finding>) {
    for (i, t) in f.sig.iter().enumerate() {
        if t.kind != Kind::Ident || f.tok_text(*t) != "match" {
            continue;
        }
        // first `{` after the scrutinee
        let mut open = None;
        for j in i + 1..f.sig.len() {
            if f.is_punct(j, '{') {
                open = Some(j);
                break;
            }
            if f.is_punct(j, ';') {
                break;
            }
        }
        let Some(open) = open else { continue };
        let Some(close) = f.match_brace(open) else {
            continue;
        };
        // arms at depth 1: (pattern start, `=>` index). The match is a
        // SimdLevel dispatch only when some arm *pattern* names
        // SimdLevel — arm bodies that merely return a level (e.g.
        // `match version { …, _ => SimdLevel::Scalar }`) don't count.
        let mut arms: Vec<(usize, usize)> = Vec::new();
        let mut depth = 0i64;
        let mut pattern_start = open + 1;
        for j in open..close {
            if f.sig[j].kind == Kind::Punct {
                match f.tok_text(f.sig[j]) {
                    "{" | "(" | "[" => {
                        depth += 1;
                        if depth == 2 && j > open {
                            // entering an arm body block; the next
                            // pattern starts after it closes
                            if let Some(body_close) = f.match_brace(j) {
                                if arms.last().is_some_and(|&(_, a)| a < j) {
                                    pattern_start = body_close + 1;
                                }
                            }
                        }
                    }
                    "}" | ")" | "]" => depth -= 1,
                    "," if depth == 1 => pattern_start = j + 1,
                    _ => {}
                }
            }
            if depth == 1 && punct2(f, j, '=', '>') {
                arms.push((pattern_start, j));
            }
        }
        let is_simd_match = arms.iter().any(|&(s, a)| {
            (s..a).any(|j| f.sig[j].kind == Kind::Ident && f.tok_text(f.sig[j]) == "SimdLevel")
        });
        if !is_simd_match {
            continue;
        }
        for &(s, a) in &arms {
            let wildcard = a == s + 1 && f.is_ident(s, "_");
            if !wildcard {
                continue;
            }
            let body = arm_body_text(f, a + 2, close);
            if !body.contains("debug_assert") {
                out.push(finding(
                    f,
                    f.sig[s].start,
                    "SIMD-NONX86-ASSERT",
                    "wildcard arm in a SimdLevel match without a debug_assert; a \
                     mis-detected level must be loud in debug builds"
                        .to_string(),
                ));
            }
        }
    }
}

/// Arms annotated `#[cfg(not(target_arch = …))]` on a SimdLevel pattern
/// must `debug_assert`.
fn cfg_not_x86_arms(f: &SourceFile, out: &mut Vec<Finding>) {
    let needle = "cfg(not(target_arch";
    let mut from = 0usize;
    while let Some(off) = f.lx.mask[from..].find(needle) {
        let at = from + off;
        from = at + needle.len();
        // the arm's `=>`: first adjacent `=` `>` pair after the attribute
        let mut arrow = None;
        for (i, t) in f.sig.iter().enumerate() {
            if t.start <= at {
                continue;
            }
            if t.kind == Kind::Ident && f.tok_text(*t) == "fn" {
                break; // attribute was on an item, not a match arm
            }
            if punct2(f, i, '=', '>') {
                arrow = Some(i);
                break;
            }
        }
        let Some(arrow) = arrow else { continue };
        let pattern = &f.text[at..f.sig[arrow].start];
        if !pattern.contains("SimdLevel") {
            continue;
        }
        let body = arm_body_text(f, arrow + 2, f.sig.len() - 1);
        if !body.contains("debug_assert") {
            out.push(finding(
                f,
                at,
                "SIMD-NONX86-ASSERT",
                "non-x86 SimdLevel arm without a debug_assert; a vector level on an \
                 architecture without the kernels must be loud in debug builds"
                    .to_string(),
            ));
        }
    }
}

/// Text of a match-arm body starting at sig index `start`: a block's
/// brace span, or the expression up to the first `,` at depth 0 (bounded
/// by `limit`).
fn arm_body_text(f: &SourceFile, start: usize, limit: usize) -> &str {
    let Some(first) = f.sig.get(start) else {
        return "";
    };
    if f.is_punct(start, '{') {
        if let Some(close) = f.match_brace(start) {
            return &f.text[first.start..f.sig[close].end];
        }
    }
    let mut depth = 0i64;
    for j in start..=limit.min(f.sig.len() - 1) {
        if f.sig[j].kind == Kind::Punct {
            match f.tok_text(f.sig[j]) {
                "{" | "(" | "[" => depth += 1,
                "}" | ")" | "]" => {
                    depth -= 1;
                    if depth < 0 {
                        return &f.text[first.start..f.sig[j].start];
                    }
                }
                "," if depth == 0 => {
                    return &f.text[first.start..f.sig[j].start];
                }
                _ => {}
            }
        }
    }
    &f.text[first.start..]
}
