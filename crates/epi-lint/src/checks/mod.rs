//! The check suite. Each submodule exposes `run(&Tree, &mut Vec<Finding>)`
//! and is individually nameable via `epi3 lint --check <name>`.

pub mod determinism;
pub mod locks;
pub mod panics;
pub mod protocol;
pub mod unsafe_simd;

use crate::source::SourceFile;
use crate::Finding;

/// Everything a check can see: the lexed Rust sources plus the README
/// (the protocol check cross-references its wire-protocol tables).
pub struct Tree {
    pub files: Vec<SourceFile>,
    /// `(path, text)` of README.md when present.
    pub readme: Option<(String, String)>,
}

impl Tree {
    pub fn file(&self, suffix: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.path.ends_with(suffix))
    }
}

/// One registry entry: (name, description, run).
pub type Check = (&'static str, &'static str, fn(&Tree, &mut Vec<Finding>));

/// Registry of nameable checks, in report order.
pub const CHECKS: &[Check] = &[
    (
        "determinism",
        "DET-HASH-ITER, DET-TIME, DET-FLOAT-FMT: nondeterminism feeding merge/codec paths",
        determinism::run,
    ),
    (
        "unsafe-simd",
        "UNSAFE-NO-SAFETY, UNSAFE-FORBID, SIMD-TF-DISPATCH, SIMD-NONX86-ASSERT: unsafe/SIMD hygiene",
        unsafe_simd::run,
    ),
    (
        "locks",
        "LOCK-RAW-UNWRAP, LOCK-ORDER: poisoning recovery and lock-order discipline",
        locks::run,
    ),
    (
        "protocol",
        "PROTO-VERB, PROTO-KEY, PROTO-RECORD: wire protocol client/server/README conformance",
        protocol::run,
    ),
    (
        "panics",
        "PANIC-UNWRAP, PANIC-EXPECT, PANIC-PANIC, PANIC-INDEX: request-path panic inventory",
        panics::run,
    ),
];

/// Build a finding anchored at a byte offset of a source file.
pub fn finding(f: &SourceFile, byte: usize, check: &str, message: String) -> Finding {
    let line = f.lx.line_of(byte);
    Finding {
        check: check.to_string(),
        file: f.path.clone(),
        line,
        message,
        excerpt: f.line_text(line).trim_start().to_string(),
        justification: None,
    }
}

/// Two adjacent single-char punct tokens forming one operator (`=>`,
/// `::`, `->`); adjacency distinguishes `=>` from `= >`.
pub fn punct2(f: &SourceFile, i: usize, a: char, b: char) -> bool {
    f.is_punct(i, a) && f.is_punct(i + 1, b) && f.sig[i].end == f.sig[i + 1].start
}

/// Inner text of a string-literal token: prefix (`b`/`r`/`br`/`c`…),
/// hashes, and quotes stripped.
pub fn str_content(raw: &str) -> &str {
    let s = raw.trim_start_matches(['b', 'r', 'c']);
    let s = s.trim_start_matches('#');
    let s = s.strip_prefix('"').unwrap_or(s);
    let s = s.trim_end_matches('#');
    s.strip_suffix('"').unwrap_or(s)
}

/// Last identifier of the receiver chain ending just before sig index
/// `dot` (the `.` of a method call): `self.shared.state.lock()` → `state`.
pub fn receiver_last_ident(f: &SourceFile, dot: usize) -> Option<&str> {
    let prev = f.sig.get(dot.checked_sub(1)?)?;
    if prev.kind == crate::lexer::Kind::Ident {
        Some(f.tok_text(*prev))
    } else {
        None
    }
}
