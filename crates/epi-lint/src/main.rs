//! `cargo run -p epi-lint` — standalone entry point; `epi3 lint` wraps
//! the same library.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str =
    "usage: epi-lint [--root DIR] [--allowlist FILE] [--check NAME]... [--json] [--list]

Runs the workspace static-analysis checks. Exits non-zero when any
non-allowlisted finding remains.

  --root DIR        repo root to lint (default: .)
  --allowlist FILE  allowlist path (default: <root>/epi-lint.allow)
  --check NAME      run only this named check (repeatable; see --list)
  --json            machine-readable output
  --list            list the nameable checks and their IDs
";

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("epi-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn run(args: Vec<String>) -> Result<bool, String> {
    let mut root = PathBuf::from(".");
    let mut allow: Option<PathBuf> = None;
    let mut only: Vec<String> = Vec::new();
    let mut json = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => root = PathBuf::from(it.next().ok_or("--root needs a value")?),
            "--allowlist" => {
                allow = Some(PathBuf::from(it.next().ok_or("--allowlist needs a value")?))
            }
            "--check" => only.push(it.next().ok_or("--check needs a value")?),
            "--json" => json = true,
            "--list" => {
                print!("{}", epi_lint::list_checks());
                return Ok(true);
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(true);
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    let valid: Vec<&str> = epi_lint::checks::CHECKS
        .iter()
        .map(|(n, _, _)| *n)
        .collect();
    for o in &only {
        if !valid.contains(&o.as_str()) {
            return Err(format!(
                "unknown check `{o}`; available: {}",
                valid.join(", ")
            ));
        }
    }
    let allow = allow.unwrap_or_else(|| root.join("epi-lint.allow"));
    let report = epi_lint::run_lint(&root, &allow, &only)?;
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.to_text());
    }
    Ok(report.findings.is_empty())
}
