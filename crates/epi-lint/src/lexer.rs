//! A small, std-only Rust lexer — just enough syntax awareness for the
//! lint passes to never be fooled by comments or string literals.
//!
//! The checks in this crate are token-sequence scanners, so the one
//! thing that must be exactly right is *classification*: a
//! `.lock().unwrap()` inside a doc comment, a raw string, or a byte
//! string is prose, not code, and must produce no tokens. The tricky
//! corners (each covered by a fixture in `tests/fixtures.rs`):
//!
//! * nested block comments (`/* a /* b */ c */` is one comment);
//! * raw strings `r"…"` / `r#"…"#` (any number of `#`s, no escapes);
//! * byte and raw-byte strings `b"…"`, `br#"…"#`, and C strings `c"…"`;
//! * `//` and `/*` *inside* string literals (still string data);
//! * the lifetime-tick ambiguity: `'a` is a lifetime, `'a'` is a char,
//!   `b'x'` is a byte literal, and `&'static str` must not swallow the
//!   rest of the file as an unterminated char.
//!
//! Alongside the token list the lexer builds a **mask**: a copy of the
//! source where every comment and every literal body is blanked to
//! spaces (newlines preserved), so byte offsets and line numbers in the
//! mask line up with the original text. Checks that want "is there real
//! code matching X on this line" grep the mask; checks that want
//! structure walk the tokens.

/// Token classification. `Str` covers every string-ish literal form
/// (plain/raw/byte/C); `Char` covers char and byte-char literals.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Kind {
    Ident,
    Lifetime,
    Num,
    Str,
    Char,
    LineComment,
    BlockComment,
    Punct,
}

/// One token: classification plus the byte span in the original source.
#[derive(Clone, Copy, Debug)]
pub struct Tok {
    pub kind: Kind,
    pub start: usize,
    pub end: usize,
}

/// Lexed source: all tokens (comments included), the code mask, and a
/// line-start table for byte→line conversion.
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub mask: String,
    line_starts: Vec<usize>,
}

impl Lexed {
    pub fn lex(src: &str) -> Lexed {
        let mut lx = Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            toks: Vec::new(),
            mask: vec![b' '; src.len()],
        };
        lx.run();
        let mut line_starts = vec![0usize];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        // newlines survive in the mask so its line numbers match
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                lx.mask[i] = b'\n';
            }
        }
        Lexed {
            toks: lx.toks,
            mask: String::from_utf8(lx.mask).expect("mask is ASCII + source newlines"),
            line_starts,
        }
    }

    /// 1-based line number of a byte offset.
    pub fn line_of(&self, byte: usize) -> usize {
        self.line_starts.partition_point(|&s| s <= byte)
    }

    /// The (1-based) line's text span in the source.
    pub fn line_span(&self, line: usize) -> (usize, usize) {
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .map(|&s| s.saturating_sub(1))
            .unwrap_or(usize::MAX);
        (start, end)
    }

    pub fn num_lines(&self) -> usize {
        self.line_starts.len()
    }
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    toks: Vec<Tok>,
    mask: Vec<u8>,
}

impl Lexer<'_> {
    fn peek(&self, off: usize) -> u8 {
        *self.bytes.get(self.pos + off).unwrap_or(&0)
    }

    fn char_at(&self, pos: usize) -> Option<char> {
        self.src[pos..].chars().next()
    }

    fn push(&mut self, kind: Kind, start: usize) {
        // code tokens keep their text in the mask; literal/comment
        // bodies stay blank so text searches can't match inside them
        if matches!(kind, Kind::Ident | Kind::Num | Kind::Punct | Kind::Lifetime) {
            self.mask[start..self.pos].copy_from_slice(&self.bytes[start..self.pos]);
        }
        self.toks.push(Tok {
            kind,
            start,
            end: self.pos,
        });
    }

    fn run(&mut self) {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let b = self.bytes[self.pos];
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => self.pos += 1,
                b'/' if self.peek(1) == b'/' => {
                    while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                    self.push(Kind::LineComment, start);
                }
                b'/' if self.peek(1) == b'*' => {
                    self.pos += 2;
                    let mut depth = 1usize;
                    while self.pos < self.bytes.len() && depth > 0 {
                        if self.peek(0) == b'/' && self.peek(1) == b'*' {
                            depth += 1;
                            self.pos += 2;
                        } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                            depth -= 1;
                            self.pos += 2;
                        } else {
                            self.pos += 1;
                        }
                    }
                    self.push(Kind::BlockComment, start);
                }
                b'"' => {
                    self.pos += 1;
                    self.scan_plain_string();
                    self.push(Kind::Str, start);
                }
                b'\'' => self.scan_tick(start),
                b'0'..=b'9' => {
                    self.scan_number();
                    self.push(Kind::Num, start);
                }
                _ => {
                    let ch = match self.char_at(self.pos) {
                        Some(c) => c,
                        None => {
                            self.pos += 1;
                            continue;
                        }
                    };
                    if ch == '_' || ch.is_alphabetic() {
                        if self.try_string_prefix(start) {
                            continue;
                        }
                        self.scan_ident();
                        self.push(Kind::Ident, start);
                    } else {
                        self.pos += ch.len_utf8();
                        self.push(Kind::Punct, start);
                    }
                }
            }
        }
    }

    /// `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `c"…"`, `b'x'` — literal
    /// forms that *start* with an identifier character. Returns true
    /// when a literal was consumed.
    fn try_string_prefix(&mut self, start: usize) -> bool {
        let rest = &self.bytes[self.pos..];
        let (prefix_len, raw, is_char) = if rest.starts_with(b"br") || rest.starts_with(b"cr") {
            (2, true, false)
        } else if rest.starts_with(b"r") {
            (1, true, false)
        } else if rest.starts_with(b"b\"") || rest.starts_with(b"c\"") {
            (1, false, false)
        } else if rest.starts_with(b"b'") {
            (1, false, true)
        } else {
            return false;
        };
        if is_char {
            self.pos += prefix_len; // at the tick
            let tick = self.pos;
            self.scan_tick(tick);
            // scan_tick pushed its own token (Char or Lifetime); widen
            // the span to include the `b` prefix
            if let Some(t) = self.toks.last_mut() {
                t.start = start;
            }
            return true;
        }
        // raw forms: prefix, then `#`*N, then `"` … `"` + `#`*N
        let mut p = self.pos + prefix_len;
        let mut hashes = 0usize;
        if raw {
            while self.bytes.get(p) == Some(&b'#') {
                hashes += 1;
                p += 1;
            }
        }
        if self.bytes.get(p) != Some(&b'"') {
            return false; // `r` / `b` was just an identifier after all
        }
        self.pos = p + 1;
        if raw {
            // no escapes in raw strings: find `"` followed by N hashes
            loop {
                match self.bytes.get(self.pos) {
                    None => break,
                    Some(b'"') => {
                        let after = &self.bytes[self.pos + 1..];
                        if after.len() >= hashes && after[..hashes].iter().all(|&c| c == b'#') {
                            self.pos += 1 + hashes;
                            break;
                        }
                        self.pos += 1;
                    }
                    _ => self.pos += 1,
                }
            }
        } else {
            self.scan_plain_string();
        }
        self.push(Kind::Str, start);
        true
    }

    /// After the opening `"` of a non-raw string: consume through the
    /// closing quote, honouring `\"` and `\\` escapes.
    fn scan_plain_string(&mut self) {
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => self.pos = (self.pos + 2).min(self.bytes.len()),
                b'"' => {
                    self.pos += 1;
                    return;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// At a `'`: decide lifetime vs char literal.
    fn scan_tick(&mut self, start: usize) {
        self.pos += 1; // consume the tick
        match self.peek(0) {
            b'\\' => {
                // escaped char literal: `'\n'`, `'\u{1F600}'`, `'\''`
                self.pos += 2;
                while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\'' {
                    self.pos += 1;
                }
                self.pos = (self.pos + 1).min(self.bytes.len());
                self.push(Kind::Char, start);
            }
            c if c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80 => {
                // an identifier-ish run: `'a'` is a char, `'a` / `'static`
                // is a lifetime
                let run_start = self.pos;
                while self.pos < self.bytes.len() {
                    let b = self.bytes[self.pos];
                    if b == b'_' || b.is_ascii_alphanumeric() || b >= 0x80 {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                if self.peek(0) == b'\'' && self.pos > run_start {
                    self.pos += 1;
                    self.push(Kind::Char, start);
                } else {
                    self.push(Kind::Lifetime, start);
                }
            }
            0 => self.push(Kind::Punct, start), // stray tick at EOF
            _ => {
                // `'('`-style single-char literal, or a stray tick
                if self.peek(1) == b'\'' {
                    self.pos += 2;
                    self.push(Kind::Char, start);
                } else {
                    self.push(Kind::Punct, start);
                }
            }
        }
    }

    fn scan_ident(&mut self) {
        while self.pos < self.bytes.len() {
            match self.char_at(self.pos) {
                Some(c) if c == '_' || c.is_alphanumeric() => self.pos += c.len_utf8(),
                _ => break,
            }
        }
    }

    fn scan_number(&mut self) {
        // pragmatic: digits, alnum suffixes (`u64`, hex, `_`), a decimal
        // point only when followed by a digit (so `1..n` and `1.min(x)`
        // stay three tokens), and a sign right after an exponent `e`
        let mut prev = b'0';
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            let ok = b.is_ascii_alphanumeric()
                || b == b'_'
                || (b == b'.' && self.peek(1).is_ascii_digit() && prev != b'.')
                || ((b == b'+' || b == b'-')
                    && (prev == b'e' || prev == b'E')
                    && self.peek(1).is_ascii_digit());
            if !ok {
                break;
            }
            prev = b;
            self.pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(Kind, String)> {
        let lx = Lexed::lex(src);
        lx.toks
            .iter()
            .map(|t| (t.kind, src[t.start..t.end].to_string()))
            .collect()
    }

    #[test]
    fn nested_block_comments_are_one_token() {
        let t = kinds("a /* x /* y */ z */ b");
        assert_eq!(t.len(), 3);
        assert_eq!(t[1].0, Kind::BlockComment);
        assert_eq!(t[1].1, "/* x /* y */ z */");
    }

    #[test]
    fn raw_strings_swallow_quotes_and_hashes() {
        let t = kinds(r####"let s = r#"has "quotes" and // slashes"#;"####);
        assert!(t
            .iter()
            .any(|(k, s)| *k == Kind::Str && s.contains("slashes")));
        // nothing inside the raw string leaked into the mask
        let lx = Lexed::lex(r####"let s = r#"x.lock().unwrap()"#;"####);
        assert!(!lx.mask.contains("unwrap"));
    }

    #[test]
    fn line_comment_inside_string_is_string() {
        let lx = Lexed::lex("let url = \"http://example.com\"; call();");
        assert!(!lx.mask.contains("example"));
        assert!(lx.mask.contains("call"));
        assert_eq!(
            lx.toks
                .iter()
                .filter(|t| t.kind == Kind::LineComment)
                .count(),
            0
        );
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let t = kinds(r##"let a = b"bytes"; let c = b'x'; let r = br#"raw"#;"##);
        assert_eq!(t.iter().filter(|(k, _)| *k == Kind::Str).count(), 2);
        assert_eq!(t.iter().filter(|(k, _)| *k == Kind::Char).count(), 1);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let t = kinds("fn f<'a>(x: &'a str, c: char) { let y = 'z'; let nl = '\\n'; }");
        let lifetimes: Vec<_> = t.iter().filter(|(k, _)| *k == Kind::Lifetime).collect();
        let chars: Vec<_> = t.iter().filter(|(k, _)| *k == Kind::Char).collect();
        assert_eq!(lifetimes.len(), 2, "{t:?}");
        assert_eq!(chars.len(), 2, "{t:?}");
        assert_eq!(chars[0].1, "'z'");
    }

    #[test]
    fn static_lifetime_does_not_eat_the_file() {
        let t = kinds("const S: &'static str = \"x\"; fn g() {}");
        assert!(t.iter().any(|(k, s)| *k == Kind::Ident && s == "g"));
    }

    #[test]
    fn numbers_stay_out_of_ranges_and_method_calls() {
        let t = kinds("for i in 1..n { x = 1.5e-3; y = 2.min(z); }");
        let nums: Vec<_> = t
            .iter()
            .filter(|(k, _)| *k == Kind::Num)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(nums, ["1", "1.5e-3", "2"]);
    }

    #[test]
    fn line_of_is_one_based() {
        let lx = Lexed::lex("a\nb\nc");
        assert_eq!(lx.line_of(0), 1);
        assert_eq!(lx.line_of(2), 2);
        assert_eq!(lx.line_of(4), 3);
    }
}
