//! epi-lint — in-tree static analysis for the epistasis workspace.
//!
//! The correctness story of this repo rests on invariants no compiler
//! checks. Each check below exists because hand-audit stopped scaling
//! once the wire protocol, checkpoint formats, and SIMD dispatch spread
//! across four crates. Run it as `epi3 lint` or
//! `cargo run -p epi-lint`; findings print as
//! `file:line: CHECK-ID message`, `--json` emits the machine-readable
//! form, and `epi-lint.allow` at the repo root carries per-site
//! justifications (see [`allowlist`]).
//!
//! # Checks and the invariants behind them
//!
//! **determinism** — merges and checkpoints must be byte-identical
//! across SIMD tiers, worker counts, and federation topologies
//! (`tests/differential.rs` locks this in behaviorally; the lint keeps
//! new code from breaking it structurally):
//! * `DET-HASH-ITER`: hash-order iteration feeding merge/codec/report
//!   paths — hash order varies per process.
//! * `DET-TIME`: `SystemTime::now`/`Instant::now` in scan/merge logic —
//!   timestamps in results break replay (deadline/backoff modules are
//!   out of scope by design).
//! * `DET-FLOAT-FMT`: decimal float text in codecs — MI scores
//!   round-trip as exact f64 bit patterns, never `{:.6}`.
//!
//! **unsafe-simd** — the SIMD core is the only unsafe in the tree and
//! every contract must be written down:
//! * `UNSAFE-NO-SAFETY`: `unsafe` without a `// SAFETY:` comment.
//! * `UNSAFE-FORBID`: a crate root missing `#![forbid(unsafe_code)]`
//!   (the core carries `deny` + a module-scoped allow).
//! * `SIMD-TF-DISPATCH`: a `#[target_feature]` fn reachable outside the
//!   matching `SimdLevel` dispatch arm — UB on the wrong CPU.
//! * `SIMD-NONX86-ASSERT`: wildcard/non-x86 dispatch arms without a
//!   `debug_assert` — mis-detected levels must be loud.
//!
//! **locks** — a poisoned mutex must degrade to recovery, not a crash
//! loop, and lock order must be globally consistent:
//! * `LOCK-RAW-UNWRAP`: `.lock().unwrap()`/`.lock().expect(` outside
//!   the poisoning-recovery helper.
//! * `LOCK-ORDER`: two mutexes acquired in opposite orders in two
//!   functions, or re-acquired while held.
//!
//! **protocol** — verbs, spec keys, and checkpoint record kinds each
//! live in several places that drift independently:
//! * `PROTO-VERB`: server dispatch vs client wrappers vs README table
//!   vs crate docs.
//! * `PROTO-KEY`: spec parser vs emitter vs README spec-keys paragraph.
//! * `PROTO-RECORD`: checkpoint encoder vs decoder — an asymmetric kind
//!   is a checkpoint that cannot be resumed.
//!
//! **panics** — every `unwrap`/`expect`/`panic!`/index on a server or
//! coordinator request path is inventoried against the allowlist:
//! `PANIC-UNWRAP`, `PANIC-EXPECT`, `PANIC-PANIC`, `PANIC-INDEX`.
//!
//! Finally `ALLOW-UNUSED` fires on allowlist entries that no longer
//! suppress anything, so the allowlist can only shrink to fit.

#![forbid(unsafe_code)]

pub mod allowlist;
pub mod checks;
pub mod lexer;
pub mod source;

use allowlist::Allowlist;
use checks::{Tree, CHECKS};
use source::SourceFile;
use std::fs;
use std::path::{Path, PathBuf};

/// One lint finding, printable as `file:line: CHECK-ID message`.
#[derive(Debug, Clone)]
pub struct Finding {
    pub check: String,
    pub file: String,
    pub line: usize,
    pub message: String,
    /// The trimmed source line, used for allowlist needle matching.
    pub excerpt: String,
    /// Set on suppressed findings: the allowlist justification.
    pub justification: Option<String>,
}

impl Finding {
    pub fn render(&self) -> String {
        format!(
            "{}:{}: {} {}",
            self.file, self.line, self.check, self.message
        )
    }
}

/// Result of a lint run: what survived the allowlist and what it
/// suppressed (kept for `--json` so audits see the justified sites too).
pub struct LintReport {
    pub findings: Vec<Finding>,
    pub suppressed: Vec<Finding>,
}

/// Directories under the repo root that hold lintable Rust sources.
const SOURCE_ROOTS: &[&str] = &["crates", "src", "shims", "tests", "benches"];

/// Walk the workspace and lex every `.rs` file.
pub fn collect_sources(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    for top in SOURCE_ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    let mut out = Vec::new();
    files.sort();
    for path in files {
        let text = fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        out.push(SourceFile::new(rel, text));
    }
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name != "target" && !name.starts_with('.') {
                walk(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Run the named checks (all when `only` is empty) over an
/// already-built tree. This is the seam the fixture tests use.
pub fn lint_tree(tree: &Tree, only: &[String]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (name, _, run) in CHECKS {
        if only.is_empty() || only.iter().any(|o| o == name) {
            run(tree, &mut findings);
        }
    }
    findings.sort_by(|a, b| {
        (&a.file, a.line, &a.check, &a.message).cmp(&(&b.file, b.line, &b.check, &b.message))
    });
    findings.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.check == b.check);
    findings
}

/// Full run: collect sources under `root`, lint, apply the allowlist at
/// `allow_path` (when it exists).
pub fn run_lint(root: &Path, allow_path: &Path, only: &[String]) -> Result<LintReport, String> {
    let files = collect_sources(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    if files.is_empty() {
        return Err(format!("no Rust sources found under {}", root.display()));
    }
    let readme_path = root.join("README.md");
    let readme = fs::read_to_string(&readme_path)
        .ok()
        .map(|t| ("README.md".to_string(), t));
    let tree = Tree { files, readme };
    let findings = lint_tree(&tree, only);
    let (findings, suppressed) = match fs::read_to_string(allow_path) {
        Ok(text) => {
            let rel = allow_path
                .strip_prefix(root)
                .unwrap_or(allow_path)
                .to_string_lossy()
                .replace('\\', "/");
            let allow = Allowlist::parse(&rel, &text)
                .map_err(|e| format!("{rel}:{}: {}", e.line, e.message))?;
            allow.apply(findings)
        }
        Err(_) => (findings, Vec::new()),
    };
    Ok(LintReport {
        findings,
        suppressed,
    })
}

// ------------------------------------------------------------- output

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn finding_json(f: &Finding) -> String {
    let mut s = format!(
        "{{\"check\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\",\"excerpt\":\"{}\"",
        json_escape(&f.check),
        json_escape(&f.file),
        f.line,
        json_escape(&f.message),
        json_escape(&f.excerpt),
    );
    if let Some(j) = &f.justification {
        s.push_str(&format!(",\"justification\":\"{}\"", json_escape(j)));
    }
    s.push('}');
    s
}

impl LintReport {
    pub fn to_json(&self) -> String {
        let findings: Vec<String> = self.findings.iter().map(finding_json).collect();
        let suppressed: Vec<String> = self.suppressed.iter().map(finding_json).collect();
        format!(
            "{{\"findings\":[{}],\"suppressed\":[{}],\"ok\":{}}}",
            findings.join(","),
            suppressed.join(","),
            self.findings.is_empty(),
        )
    }

    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.render());
            out.push('\n');
        }
        out.push_str(&format!(
            "epi-lint: {} finding(s), {} suppressed by allowlist\n",
            self.findings.len(),
            self.suppressed.len()
        ));
        out
    }
}

/// `--list` output: each nameable check with its IDs.
pub fn list_checks() -> String {
    let mut out = String::new();
    for (name, desc, _) in CHECKS {
        out.push_str(&format!("{name:12} {desc}\n"));
    }
    out
}
