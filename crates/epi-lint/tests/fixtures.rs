//! Fixture tests for every lint check: at least one fixture proving the
//! check fires and one proving it stays silent, plus lexer-misfire
//! fixtures (comments, strings, raw strings, byte strings, lifetimes)
//! showing the token mask keeps look-alike text from triggering
//! findings. Fixtures are lexed, never compiled, so they only need to be
//! lexically plausible Rust.

use epi_lint::checks::Tree;
use epi_lint::lint_tree;
use epi_lint::source::SourceFile;
use epi_lint::Finding;

fn tree(files: &[(&str, &str)]) -> Tree {
    Tree {
        files: files
            .iter()
            .map(|(p, t)| SourceFile::new(p.to_string(), t.to_string()))
            .collect(),
        readme: None,
    }
}

fn run(t: &Tree, group: &str) -> Vec<Finding> {
    lint_tree(t, &[group.to_string()])
}

fn count(findings: &[Finding], id: &str) -> usize {
    findings.iter().filter(|f| f.check == id).count()
}

// ------------------------------------------------------- determinism

#[test]
fn det_hash_iter_fires_on_method_and_for_loop() {
    let t = tree(&[(
        "crates/core/src/result.rs",
        r#"
use std::collections::HashMap;
pub fn merge_counts() -> Vec<(u32, u32)> {
    let counts: HashMap<u32, u32> = HashMap::new();
    let mut v: Vec<(u32, u32)> = counts.iter().map(|(k, c)| (*k, *c)).collect();
    v.sort();
    v
}
pub fn sum_all(m: &mut HashMap<u32, u32>) -> u32 {
    let mut sum = 0;
    for (_k, c) in m {
        sum += *c;
    }
    sum
}
"#,
    )]);
    let f = run(&t, "determinism");
    assert_eq!(count(&f, "DET-HASH-ITER"), 2, "{f:?}");
}

#[test]
fn det_hash_iter_silent_on_btreemap_and_out_of_scope() {
    let t = tree(&[
        (
            // BTreeMap iteration is ordered: no finding
            "crates/core/src/result.rs",
            r#"
use std::collections::BTreeMap;
pub fn merge_counts(counts: &BTreeMap<u32, u32>) -> Vec<u32> {
    counts.values().copied().collect()
}
"#,
        ),
        (
            // HashMap iteration outside the merge/codec scope: no finding
            "crates/epi-server/src/server.rs",
            r#"
use std::collections::HashMap;
pub fn conns(m: &HashMap<u32, u32>) -> usize {
    m.iter().count()
}
"#,
        ),
    ]);
    assert_eq!(count(&run(&t, "determinism"), "DET-HASH-ITER"), 0);
}

#[test]
fn det_time_fires_in_scan_logic() {
    let t = tree(&[(
        "crates/core/src/scan.rs",
        r#"
use std::time::Instant;
pub fn scan() {
    let start = Instant::now();
    let _ = start;
}
"#,
    )]);
    assert_eq!(count(&run(&t, "determinism"), "DET-TIME"), 1);
}

#[test]
fn det_time_silent_in_tests_and_deadline_modules() {
    let t = tree(&[
        (
            // test code in a scoped file: no finding
            "crates/core/src/scan.rs",
            r#"
#[cfg(test)]
mod tests {
    use std::time::Instant;
    #[test]
    fn timing() {
        let _ = Instant::now();
    }
}
"#,
        ),
        (
            // the server accept/deadline loop is deliberately out of scope
            "crates/epi-server/src/server.rs",
            r#"
use std::time::Instant;
pub fn accept_loop() {
    let _deadline = Instant::now();
}
"#,
        ),
    ]);
    assert_eq!(count(&run(&t, "determinism"), "DET-TIME"), 0);
}

#[test]
fn det_float_fmt_fires_on_decimal_format_and_parse() {
    let t = tree(&[(
        "crates/epi-server/src/codec.rs",
        r#"
pub fn encode(mi: f64) -> String {
    format!("mi={:.6}", mi)
}
pub fn decode(s: &str) -> f64 {
    s.parse::<f64>().unwrap_or(0.0)
}
"#,
    )]);
    assert_eq!(count(&run(&t, "determinism"), "DET-FLOAT-FMT"), 2);
}

#[test]
fn det_float_fmt_silent_in_bits_helpers() {
    let t = tree(&[(
        "crates/epi-server/src/codec.rs",
        r#"
pub fn mi_to_bits_hex(mi: f64) -> String {
    format!("{:016x}", mi.to_bits())
}
pub fn debug_bits_dump(mi: f64) -> String {
    format!("{:.3} ({:016x})", mi, mi.to_bits())
}
"#,
    )]);
    // the exact-bits round-trip has no decimal text, and fns whose name
    // mentions `bits` are the sanctioned decimal escape hatch
    assert_eq!(count(&run(&t, "determinism"), "DET-FLOAT-FMT"), 0);
}

// ------------------------------------------------------- unsafe-simd

#[test]
fn unsafe_no_safety_fires_without_comment() {
    let t = tree(&[(
        "crates/core/src/simd.rs",
        r#"
pub fn run() {
    unsafe { core_op() }
}
"#,
    )]);
    assert_eq!(count(&run(&t, "unsafe-simd"), "UNSAFE-NO-SAFETY"), 1);
}

#[test]
fn unsafe_no_safety_silent_with_comment_even_through_attrs() {
    let t = tree(&[(
        "crates/core/src/simd.rs",
        r#"
pub fn run() {
    // SAFETY: fixture contract documented here.
    unsafe { core_op() }
}

// SAFETY: caller upholds the contract; attributes may sit between the
// comment and the unsafe token.
#[inline]
#[allow(dead_code)]
unsafe fn k() {}
"#,
    )]);
    assert_eq!(count(&run(&t, "unsafe-simd"), "UNSAFE-NO-SAFETY"), 0);
}

#[test]
fn unsafe_forbid_fires_and_goes_silent() {
    let bare = tree(&[("crates/foo/src/lib.rs", "pub fn f() {}\n")]);
    assert_eq!(count(&run(&bare, "unsafe-simd"), "UNSAFE-FORBID"), 1);

    let gated = tree(&[(
        "crates/foo/src/lib.rs",
        "#![forbid(unsafe_code)]\npub fn f() {}\n",
    )]);
    assert_eq!(count(&run(&gated, "unsafe-simd"), "UNSAFE-FORBID"), 0);

    // the attribute inside a comment does not count: the mask is checked
    let fake = tree(&[(
        "crates/foo/src/lib.rs",
        "// add #![forbid(unsafe_code)] some day\npub fn f() {}\n",
    )]);
    assert_eq!(count(&run(&fake, "unsafe-simd"), "UNSAFE-FORBID"), 1);
}

#[test]
fn simd_tf_dispatch_fires_from_wrong_arm() {
    let t = tree(&[(
        "crates/core/src/simd.rs",
        r#"
#[target_feature(enable = "avx2,popcnt")]
// SAFETY: fixture.
unsafe fn kern() {}

pub fn bad(level: SimdLevel) {
    match level {
        // SAFETY: (wrong) scalar arm guarantees nothing.
        SimdLevel::Scalar => unsafe { kern() },
        _ => debug_assert!(true),
    }
}
"#,
    )]);
    assert_eq!(count(&run(&t, "unsafe-simd"), "SIMD-TF-DISPATCH"), 1);
}

#[test]
fn simd_tf_dispatch_silent_behind_matching_arm_or_caller_features() {
    let t = tree(&[(
        "crates/core/src/simd.rs",
        r#"
#[target_feature(enable = "avx2,popcnt")]
// SAFETY: fixture.
unsafe fn kern() {}

pub fn good(level: SimdLevel) {
    match level {
        // SAFETY: detection guaranteed avx2+popcnt.
        SimdLevel::Avx2 => unsafe { kern() },
        _ => debug_assert!(true),
    }
}

#[target_feature(enable = "avx512f,avx512bw")]
// SAFETY: fixture; avx512 hosts always have avx2.
unsafe fn outer() {
    inner();
}
#[target_feature(enable = "avx2")]
// SAFETY: fixture.
unsafe fn inner() {}
"#,
    )]);
    assert_eq!(count(&run(&t, "unsafe-simd"), "SIMD-TF-DISPATCH"), 0);
}

#[test]
fn simd_nonx86_assert_fires_on_bare_wildcard_and_cfg_arm() {
    let t = tree(&[(
        "crates/core/src/simd.rs",
        r#"
pub fn pick(level: SimdLevel) -> u32 {
    match level {
        SimdLevel::Avx2 => 2,
        _ => 0,
    }
}

pub fn dispatch(level: SimdLevel) {
    match level {
        #[cfg(not(target_arch = "x86_64"))]
        SimdLevel::Avx2 => {}
        _ => debug_assert!(true),
    }
}
"#,
    )]);
    assert_eq!(count(&run(&t, "unsafe-simd"), "SIMD-NONX86-ASSERT"), 2);
}

#[test]
fn simd_nonx86_assert_silent_with_debug_assert_or_value_position() {
    let t = tree(&[(
        "crates/core/src/simd.rs",
        r#"
pub fn pick(level: SimdLevel) -> u32 {
    match level {
        SimdLevel::Avx2 => 2,
        _ => {
            debug_assert!(false, "no vector level on this arch");
            0
        }
    }
}

pub fn choose(v: u32) -> SimdLevel {
    // SimdLevel only in arm *values*: this is not a dispatch match
    match v {
        5 => SimdLevel::Avx2,
        _ => SimdLevel::Scalar,
    }
}
"#,
    )]);
    assert_eq!(count(&run(&t, "unsafe-simd"), "SIMD-NONX86-ASSERT"), 0);
}

// ------------------------------------------------------------- locks

#[test]
fn lock_raw_unwrap_fires() {
    let t = tree(&[(
        "crates/epi-server/src/engine.rs",
        r#"
pub fn touch(state: &std::sync::Mutex<u32>) -> u32 {
    *state.lock().unwrap()
}
"#,
    )]);
    assert_eq!(count(&run(&t, "locks"), "LOCK-RAW-UNWRAP"), 1);
}

#[test]
fn lock_raw_unwrap_silent_through_recovery_helper() {
    let t = tree(&[(
        "crates/epi-server/src/engine.rs",
        r#"
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}
pub fn touch(state: &std::sync::Mutex<u32>) -> u32 {
    *lock(state)
}
"#,
    )]);
    assert_eq!(count(&run(&t, "locks"), "LOCK-RAW-UNWRAP"), 0);
}

#[test]
fn lock_order_fires_on_inversion_and_reacquisition() {
    let inverted = tree(&[(
        "crates/epi-server/src/engine.rs",
        r#"
struct S {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}
fn one(s: &S) {
    let ga = s.alpha.lock();
    let gb = s.beta.lock();
    let _ = (ga, gb);
}
fn two(s: &S) {
    let gb = s.beta.lock();
    let ga = s.alpha.lock();
    let _ = (ga, gb);
}
"#,
    )]);
    assert_eq!(count(&run(&inverted, "locks"), "LOCK-ORDER"), 1);

    let reacquired = tree(&[(
        "crates/epi-server/src/engine.rs",
        r#"
struct S {
    alpha: Mutex<u32>,
}
fn again(s: &S) {
    let g1 = s.alpha.lock();
    let g2 = s.alpha.lock();
    let _ = (g1, g2);
}
"#,
    )]);
    assert_eq!(count(&run(&reacquired, "locks"), "LOCK-ORDER"), 1);
}

#[test]
fn lock_order_silent_on_consistent_order_and_dropped_guards() {
    let t = tree(&[(
        "crates/epi-server/src/engine.rs",
        r#"
struct S {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}
fn one(s: &S) {
    let ga = s.alpha.lock();
    let gb = s.beta.lock();
    let _ = (ga, gb);
}
fn two(s: &S) {
    let ga = s.alpha.lock();
    drop(ga);
    let gb = s.beta.lock();
    let _ = gb;
}
fn three(s: &S) {
    let gb = s.beta.lock();
    drop(gb);
    let ga = s.alpha.lock();
    let _ = ga;
}
"#,
    )]);
    // one() establishes alpha→beta; two/three drop before re-acquiring,
    // so three's beta-then-alpha never holds both at once
    assert_eq!(count(&run(&t, "locks"), "LOCK-ORDER"), 0);
}

// ---------------------------------------------------------- protocol

const SERVER_RS: &str = r#"
pub fn dispatch(verb: &str) {
    match verb {
        "PING" => reply_pong(),
        "SUBMIT" => submit(),
        _ => err(),
    }
}
"#;

const LIB_RS: &str = r#"
//! | `PING` | `PONG` |
//! | `SUBMIT <spec>` | `OK <id>` |
"#;

const README_TABLE: &str = "\
## Wire protocol

| Request | Reply |
|----------|-------|
| `PING` | `PONG` |
| `SUBMIT <spec>` | `OK <id>` |
";

#[test]
fn proto_verb_fires_when_client_misses_a_verb() {
    let mut t = tree(&[
        ("crates/epi-server/src/server.rs", SERVER_RS),
        (
            "crates/epi-server/src/client.rs",
            r#"
impl Client {
    pub fn ping(&mut self) -> String {
        self.send("PING")
    }
}
"#,
        ),
        ("crates/epi-server/src/lib.rs", LIB_RS),
    ]);
    t.readme = Some(("README.md".to_string(), README_TABLE.to_string()));
    let f = run(&t, "protocol");
    assert_eq!(count(&f, "PROTO-VERB"), 1, "{f:?}");
    assert!(f[0].message.contains("SUBMIT") && f[0].message.contains("client wrappers"));
}

#[test]
fn proto_verb_silent_when_all_four_sources_agree() {
    let mut t = tree(&[
        ("crates/epi-server/src/server.rs", SERVER_RS),
        (
            "crates/epi-server/src/client.rs",
            r#"
impl Client {
    pub fn ping(&mut self) -> String {
        self.send("PING")
    }
    pub fn submit(&mut self, spec: &str) -> String {
        self.send(&format!("SUBMIT {spec}"))
    }
}
"#,
        ),
        ("crates/epi-server/src/lib.rs", LIB_RS),
    ]);
    t.readme = Some(("README.md".to_string(), README_TABLE.to_string()));
    assert_eq!(count(&run(&t, "protocol"), "PROTO-VERB"), 0);
}

const SPEC_RS_BALANCED: &str = r#"
pub fn parse(key: &str, tok: &str) -> bool {
    if tok == "mi" {
        return true;
    }
    match key {
        "path" => true,
        "top" => true,
        _ => false,
    }
}
pub fn emit(p: &str, n: u32) -> String {
    let mut s = format!("path={p} top={n}");
    s.push_str(" mi");
    s
}
"#;

const README_KEYS: &str = "\
spec keys: `path=<file>` selects the dataset, `top=<n>` bounds the
candidate list, and the bare `mi` flag requests mutual information.

Next paragraph is out of the key list.
";

#[test]
fn proto_key_fires_on_parsed_but_never_emitted() {
    let mut t = tree(&[(
        "crates/epi-server/src/spec.rs",
        r#"
pub fn parse(key: &str) -> bool {
    match key {
        "path" => true,
        "shards" => true,
        _ => false,
    }
}
pub fn emit(p: &str) -> String {
    format!("path={p}")
}
"#,
    )]);
    t.readme = Some((
        "README.md".to_string(),
        "spec keys: `path=<file>` selects the dataset.\n\n".to_string(),
    ));
    let f = run(&t, "protocol");
    assert_eq!(count(&f, "PROTO-KEY"), 1, "{f:?}");
    assert!(f[0].message.contains("shards"));
}

#[test]
fn proto_key_silent_when_parser_emitter_and_readme_agree() {
    let mut t = tree(&[("crates/epi-server/src/spec.rs", SPEC_RS_BALANCED)]);
    t.readme = Some(("README.md".to_string(), README_KEYS.to_string()));
    let f = run(&t, "protocol");
    assert_eq!(count(&f, "PROTO-KEY"), 0, "{f:?}");
}

#[test]
fn proto_record_fires_on_write_without_parse() {
    let t = tree(&[(
        "crates/epi-server/src/codec.rs",
        r#"
pub fn save(w: &mut impl Write, id: u32) {
    writeln!(w, "shard {id}").ok();
    writeln!(w, "done {id}").ok();
}
pub fn load(line: &str) -> Option<u32> {
    line.strip_prefix("shard ").and_then(|r| r.parse().ok())
}
"#,
    )]);
    let f = run(&t, "protocol");
    assert_eq!(count(&f, "PROTO-RECORD"), 1, "{f:?}");
    assert!(f[0].message.contains("done") && f[0].message.contains("decoder"));
}

#[test]
fn proto_record_silent_when_encoder_and_decoder_are_symmetric() {
    let t = tree(&[(
        "crates/epi-server/src/codec.rs",
        r#"
pub fn save(w: &mut impl Write, id: u32) {
    writeln!(w, "shard {id}").ok();
    writeln!(w, "done {id}").ok();
}
pub fn load(line: &str) -> u32 {
    if let Some(r) = line.strip_prefix("shard ") {
        return r.parse().unwrap_or(0);
    }
    match line.split_whitespace().next() {
        Some("done") => 1,
        _ => 0,
    }
}
"#,
    )]);
    assert_eq!(count(&run(&t, "protocol"), "PROTO-RECORD"), 0);
}

// ------------------------------------------------------------- panics

const PANICKY: &str = r#"
pub fn handle(v: &[u32], o: Option<u32>) -> u32 {
    let a = o.unwrap();
    let b = o.expect("set");
    if v.is_empty() {
        panic!("boom");
    }
    a + b + v[0]
}
"#;

#[test]
fn panics_fire_on_all_four_kinds_in_scope() {
    let t = tree(&[("crates/epi-server/src/fixture.rs", PANICKY)]);
    let f = run(&t, "panics");
    assert_eq!(count(&f, "PANIC-UNWRAP"), 1);
    assert_eq!(count(&f, "PANIC-EXPECT"), 1);
    assert_eq!(count(&f, "PANIC-PANIC"), 1);
    assert_eq!(count(&f, "PANIC-INDEX"), 1);
}

#[test]
fn panics_silent_out_of_scope_and_in_tests() {
    let t = tree(&[
        // same code outside the server/coordinator request paths
        ("crates/core/src/fixture.rs", PANICKY),
        (
            "crates/epi-coord/src/fixture.rs",
            r#"
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let v = vec![1];
        assert_eq!(v[0], Some(1).unwrap());
    }
}
"#,
        ),
    ]);
    assert!(run(&t, "panics").is_empty());
}

#[test]
fn panic_index_silent_on_slice_types_and_patterns() {
    let t = tree(&[(
        "crates/epi-server/src/fixture.rs",
        r#"
pub fn shapes(x: &[u8]) -> &[u8] {
    let _t: &[u8] = x;
    match x {
        [a] => {
            let _ = a;
        }
        _ => {}
    }
    x
}
"#,
    )]);
    assert!(run(&t, "panics").is_empty());
}

// ----------------------------------------------------- lexer misfires

/// Comments, strings, raw strings, byte strings, and lifetimes full of
/// finding-shaped text must not fire — and the lexer must stay in sync
/// so the one real violation after them still does.
#[test]
fn lexer_mask_keeps_lookalike_text_silent() {
    let t = tree(&[(
        "crates/epi-server/src/lexmask.rs",
        r###"
//! doc: calling state.lock().unwrap() would wedge the server — don't.
/* block comment with v[0] and panic!("x")
   /* nested: o.unwrap() */
   still inside the outer comment: o.expect("x") */
pub fn clean(url: &str) -> String {
    let msg = "panic!(\"not real\") and x.lock().unwrap() inside a string";
    let raw = r#"v[0] o.unwrap() //"#;
    let bytes = b"PING bytes with o.expect(x)";
    let _ = (url, msg, raw, bytes);
    String::new()
}
pub fn after<'a>(s: &'a std::sync::Mutex<u32>) -> u32 {
    let url = "https://example.test"; // `//` in the string must not eat the line
    let g = s.lock().unwrap();
    url.len() as u32 + *g
}
"###,
    )]);
    let locks = run(&t, "locks");
    let panics = run(&t, "panics");
    // exactly the real `.lock().unwrap()` in `after` — nothing from the
    // comment/string bodies above it
    assert_eq!(count(&locks, "LOCK-RAW-UNWRAP"), 1, "{locks:?}");
    assert_eq!(count(&panics, "PANIC-UNWRAP"), 1, "{panics:?}");
    let line = locks[0].line;
    assert_eq!(panics[0].line, line);
    assert!(locks[0].excerpt.contains("let g = s.lock().unwrap();"));
}
