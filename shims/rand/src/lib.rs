//! Offline stand-in for the subset of [rand](https://crates.io/crates/rand)
//! used by this workspace: `StdRng` seeded with `seed_from_u64`, `gen`
//! for `f64`, `gen_range` over float/integer ranges, and `gen_bool`.
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — not the upstream
//! ChaCha12, so seeds produce *different* (but equally deterministic and
//! statistically sound) streams. Nothing in the workspace depends on the
//! exact upstream streams, only on determinism per seed.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    pub use crate::StdRng;
}

/// Uniform random source. Only `next_u64` must be provided; everything
/// else derives from it.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Sample a value of `T` from its "standard" distribution
    /// (`f64`: uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

/// Types samplable from a uniform bit source (the `Standard` distribution
/// of upstream rand, flattened into a trait).
pub trait Standard {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + f64::sample(rng) * (hi - lo)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + (rng.next_u64() as $t);
                }
                lo + (below(rng, span + 1) as $t)
            }
        }
    )*};
}

int_sample_range!(usize, u8, u16, u32, u64);

/// Unbiased uniform draw in `[0, n)` by rejection.
fn below<R: Rng + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0);
    let zone = u64::MAX - (u64::MAX % n);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % n;
        }
    }
}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// xoshiro256++ generator (Blackman & Vigna), seeded via SplitMix64.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = rng.gen_range(0.2..=0.4);
            assert!((0.2..=0.4).contains(&x));
            let k = rng.gen_range(3usize..10);
            assert!((3..10).contains(&k));
            let j = rng.gen_range(0u8..=2);
            assert!(j <= 2);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
    }
}
