//! Offline stand-in for the subset of
//! [polling](https://crates.io/crates/polling) used by this workspace.
//!
//! The build environment has no registry access, so this crate wraps the
//! `poll(2)` syscall (already linked through std's libc) behind the same
//! `Poller`/`Event` names the real crate exports. Two deliberate
//! divergences, both in the direction the `epi-server` readiness loop
//! wants:
//!
//! * **level-triggered**, not oneshot: an interest stays armed until
//!   [`Poller::modify`] or [`Poller::delete`] changes it, so a socket
//!   with unread bytes keeps reporting readable on every wait;
//! * registration takes `&mut self` — the server owns its poller
//!   exclusively, so no interior mutability (and no lock) is needed.
//!
//! The registry is a flat `Vec`: the server polls one listener plus a
//! few hundred connections at most, far below the point where `poll(2)`
//! fd-set rebuild costs would argue for epoll.

#![deny(unsafe_code)]

use std::io;
use std::time::Duration;

#[cfg(unix)]
use std::os::unix::io::{AsRawFd, RawFd};

/// Readiness interest / readiness report for one registered source,
/// identified by the caller-chosen `key`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    pub key: usize,
    pub readable: bool,
    pub writable: bool,
}

impl Event {
    pub fn readable(key: usize) -> Self {
        Self {
            key,
            readable: true,
            writable: false,
        }
    }

    pub fn writable(key: usize) -> Self {
        Self {
            key,
            readable: false,
            writable: true,
        }
    }

    pub fn all(key: usize) -> Self {
        Self {
            key,
            readable: true,
            writable: true,
        }
    }

    /// Registered but currently dormant: the fd stays in the set (its
    /// key is reserved) without waking the poller. The server parks its
    /// listener like this while backing off from accept errors.
    pub fn none(key: usize) -> Self {
        Self {
            key,
            readable: false,
            writable: false,
        }
    }
}

#[cfg(unix)]
mod sys {
    // The one unsafe surface of the workspace outside the SIMD core:
    // the `poll(2)` FFI declaration and call. Everything above it is
    // safe Rust over plain fd/interest bookkeeping.
    #![allow(unsafe_code)]

    use std::os::raw::{c_int, c_short, c_ulong};

    pub const POLLIN: c_short = 0x001;
    pub const POLLOUT: c_short = 0x004;
    pub const POLLERR: c_short = 0x008;
    pub const POLLHUP: c_short = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: c_short,
        pub revents: c_short,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: c_int) -> std::io::Result<usize> {
        // SAFETY: `fds` is a valid, exclusively borrowed slice of
        // `#[repr(C)]` pollfd-layout structs, its length is passed as
        // nfds, and poll(2) writes only the `revents` fields within
        // that span. The pointer outlives the call; no aliasing exists
        // while the mutable borrow is held.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
        if rc < 0 {
            Err(std::io::Error::last_os_error())
        } else {
            Ok(rc as usize)
        }
    }
}

/// A `poll(2)`-backed readiness watcher over registered fds.
#[cfg(unix)]
pub struct Poller {
    sources: Vec<(RawFd, Event)>,
}

#[cfg(unix)]
impl Poller {
    pub fn new() -> io::Result<Self> {
        Ok(Self {
            sources: Vec::new(),
        })
    }

    /// Register `source` with an initial interest. The `key` inside
    /// `interest` is echoed back in every readiness report.
    pub fn add(&mut self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        let fd = source.as_raw_fd();
        if self.sources.iter().any(|(f, _)| *f == fd) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "fd already registered",
            ));
        }
        self.sources.push((fd, interest));
        Ok(())
    }

    /// Replace the interest of an already-registered source.
    pub fn modify(&mut self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        let fd = source.as_raw_fd();
        match self.sources.iter_mut().find(|(f, _)| *f == fd) {
            Some((_, ev)) => {
                *ev = interest;
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
        }
    }

    /// Remove a source from the set. Unlike the real crate, deletion
    /// also takes the registration's `key`: the unix backend deletes by
    /// fd, but the non-unix fallback has no fd and keys its registry on
    /// `key` alone, so both signatures carry it.
    pub fn delete(&mut self, source: &impl AsRawFd, _key: usize) -> io::Result<()> {
        let fd = source.as_raw_fd();
        self.sources.retain(|(f, _)| *f != fd);
        Ok(())
    }

    /// Block until at least one registered interest is ready or the
    /// timeout elapses (`None` = wait forever). Ready events are
    /// appended to `events` (cleared first); returns how many. An
    /// `EINTR`-interrupted wait reports zero events rather than an
    /// error, like the real crate.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        let timeout_ms: i32 = match timeout {
            None => -1,
            // round up so a 100µs deadline does not spin at timeout 0
            Some(d) => d
                .as_millis()
                .saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0))
                .min(i32::MAX as u128) as i32,
        };
        let mut fds: Vec<sys::PollFd> = self
            .sources
            .iter()
            .map(|(fd, ev)| {
                let mut bits: i16 = 0;
                if ev.readable {
                    bits |= sys::POLLIN;
                }
                if ev.writable {
                    bits |= sys::POLLOUT;
                }
                sys::PollFd {
                    fd: *fd,
                    events: bits,
                    revents: 0,
                }
            })
            .collect();
        match sys::poll_fds(fds.as_mut_slice(), timeout_ms) {
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => return Ok(0),
            Err(e) => return Err(e),
        }
        for (pfd, (_, ev)) in fds.iter().zip(self.sources.iter()) {
            // error/hangup conditions surface through whichever
            // direction the caller is watching, so a closed peer wakes
            // a read-interested connection instead of hanging it
            let err = pfd.revents & (sys::POLLERR | sys::POLLHUP) != 0;
            let readable = ev.readable && (pfd.revents & sys::POLLIN != 0 || err);
            let writable = ev.writable && (pfd.revents & sys::POLLOUT != 0 || err);
            if readable || writable {
                events.push(Event {
                    key: ev.key,
                    readable,
                    writable,
                });
            }
        }
        Ok(events.len())
    }
}

/// Non-unix fallback: no `poll(2)`; sleep a beat and report every armed
/// interest as ready, degrading the readiness loop to a 1 ms busy poll.
/// Correct (sockets are nonblocking, spurious readiness is retried;
/// the registry is keyed on the caller's `key`, so add/modify/delete
/// track slot reuse exactly) but slow — the workspace only targets
/// unix.
#[cfg(not(unix))]
pub struct Poller {
    sources: Vec<Event>,
}

#[cfg(not(unix))]
impl Poller {
    pub fn new() -> io::Result<Self> {
        Ok(Self {
            sources: Vec::new(),
        })
    }

    pub fn add<T>(&mut self, _source: &T, interest: Event) -> io::Result<()> {
        // the registry is keyed on `interest.key` (no fds here): a
        // re-added key replaces its old entry, so a reused connection
        // slot cannot leave a duplicate behind for modify()/wait() to
        // pick the stale half of
        match self.sources.iter_mut().find(|ev| ev.key == interest.key) {
            Some(ev) => *ev = interest,
            None => self.sources.push(interest),
        }
        Ok(())
    }

    pub fn modify<T>(&mut self, _source: &T, interest: Event) -> io::Result<()> {
        match self.sources.iter_mut().find(|ev| ev.key == interest.key) {
            Some(ev) => {
                *ev = interest;
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                "key not registered",
            )),
        }
    }

    pub fn delete<T>(&mut self, _source: &T, key: usize) -> io::Result<()> {
        self.sources.retain(|ev| ev.key != key);
        Ok(())
    }

    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        let nap = timeout.unwrap_or(Duration::from_millis(1));
        std::thread::sleep(nap.min(Duration::from_millis(1)));
        for ev in &self.sources {
            if ev.readable || ev.writable {
                events.push(*ev);
            }
        }
        Ok(events.len())
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn listener_reports_readable_when_a_connection_is_pending() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.add(&listener, Event::readable(7)).unwrap();

        let mut events = Vec::new();
        // nothing pending: a short wait times out empty
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);

        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].key, 7);
        assert!(events[0].readable);
    }

    #[test]
    fn level_triggered_interest_persists_until_modified() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.add(&listener, Event::readable(1)).unwrap();
        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();

        let mut events = Vec::new();
        for _ in 0..3 {
            // the pending connection is never accepted, so a
            // level-triggered poller must keep reporting it
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(n, 1);
        }
        // parking the interest silences it
        poller.modify(&listener, Event::none(1)).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn writable_and_readable_directions_are_independent() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (mut served, _) = listener.accept().unwrap();
        client.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller.add(&client, Event::all(3)).unwrap();
        let mut events = Vec::new();

        // an idle connected socket: writable, not readable
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.key == 3 && e.writable));
        assert!(!events.iter().any(|e| e.readable));

        served.write_all(b"x").unwrap();
        served.flush().unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            poller
                .wait(&mut events, Some(Duration::from_millis(50)))
                .unwrap();
            if events.iter().any(|e| e.key == 3 && e.readable) {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "never readable");
        }
        let mut buf = [0u8; 1];
        assert_eq!(client.read(&mut buf).unwrap(), 1);
    }
}
