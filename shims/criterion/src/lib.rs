//! Offline stand-in for the subset of
//! [criterion](https://crates.io/crates/criterion) used by this workspace.
//!
//! Implements `criterion_group!` / `criterion_main!`, benchmark groups
//! with `sample_size` / `warm_up_time` / `measurement_time` /
//! `throughput`, and `Bencher::iter` with a simple fixed-sample timing
//! loop: warm up for the configured wall time, then take `sample_size`
//! timed samples and report mean / min plus derived throughput. Results
//! are printed to stdout; there is no HTML report or statistical
//! regression machinery.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation used to derive rates from measured times.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{parameter}", function.into()),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes the filter as a free argument.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && !a.is_empty());
        Self { filter }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            filter: self.filter.clone(),
            ..BenchmarkGroup::default()
        }
    }

    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    filter: Option<String>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    // keep the lifetime parameter upstream has, so user code that names
    // the type keeps compiling
    #[allow(dead_code)]
    _marker: std::marker::PhantomData<&'a ()>,
}

// Struct update helper because of the PhantomData field.
impl Default for BenchmarkGroup<'_> {
    fn default() -> Self {
        Self {
            name: String::new(),
            filter: None,
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
            throughput: None,
            _marker: std::marker::PhantomData,
        }
    }
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, mut f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        let full = if self.name.is_empty() {
            id.id.clone()
        } else {
            format!("{}/{}", self.name, id.id)
        };
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&full, self.throughput);
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<R>(&mut self, mut payload: impl FnMut() -> R) {
        // Warm-up: run until the configured wall time elapses.
        let warm_start = Instant::now();
        let mut warm_iters: u32 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(payload());
            warm_iters += 1;
        }
        // Choose an iteration count per sample so the whole measurement
        // roughly fits the configured budget.
        let per_iter = warm_start.elapsed() / warm_iters.max(1);
        let budget_per_sample = self.measurement_time / self.sample_size as u32;
        let iters = if per_iter.is_zero() {
            1
        } else {
            (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u32
        };
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(payload());
            }
            self.samples.push(t0.elapsed() / iters);
        }
    }

    fn report(&self, name: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let mean: Duration = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        let rate = throughput.map(|t| {
            let secs = mean.as_secs_f64().max(1e-12);
            match t {
                Throughput::Elements(n) => format!(" {:>10.3} Melem/s", n as f64 / secs / 1e6),
                Throughput::Bytes(n) => {
                    format!(" {:>10.3} MiB/s", n as f64 / secs / 1024.0 / 1024.0)
                }
            }
        });
        println!(
            "{name:<40} mean {mean:>12.3?}  min {min:>12.3?}{}",
            rate.unwrap_or_default()
        );
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        group.throughput(Throughput::Elements(100));
        group.bench_function(BenchmarkId::from_parameter("sum"), |b| {
            b.iter(|| (0..100u64).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::from_parameter("x2"), &2u64, |b, &k| {
            b.iter(|| k * 2)
        });
        group.finish();
    }

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        payload(&mut c);
    }
}
