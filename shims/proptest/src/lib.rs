//! Offline stand-in for the subset of
//! [proptest](https://crates.io/crates/proptest) used by this workspace.
//!
//! Provides the same names — `proptest!`, `prop_assert!`, `prop_assert_eq!`,
//! `Strategy` with `prop_map` / `prop_flat_map` / `prop_filter_map`, range
//! and tuple strategies, `any`, `prop::collection::vec`, and
//! `prop::sample::select` — backed by plain seeded random generation:
//! each `#[test]` runs `cases` random inputs from a deterministic
//! per-test seed. There is **no shrinking**; a failing case panics with
//! the ordinary assertion message.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::ops::{Range, RangeInclusive};

pub mod prelude {
    pub use crate::{any, prop, proptest, Just, ProptestConfig, Strategy};
    // The macros are exported at the crate root; `use proptest::prelude::*`
    // must also bring them into scope, as upstream does.
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume};
}

/// Mirror of upstream's `proptest::prelude::prop` module alias.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Runner configuration; only the knobs this workspace touches.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Deterministic generator for test inputs (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed derived from the test name and case number, so every test has
    /// its own reproducible stream.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of random values. `generate` returns `None` when a filter
/// rejected the draw; the runner retries with fresh randomness.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter_map<U, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<U>,
    {
        FilterMap {
            inner: self,
            f,
            _whence: whence,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
        (**self).generate(rng)
    }
}

/// Draw one value from a strategy, retrying filter rejections.
pub fn sample_strategy<S: Strategy>(strategy: &S, rng: &mut TestRng, what: &str) -> S::Value {
    for _ in 0..10_000 {
        if let Some(v) = strategy.generate(rng) {
            return v;
        }
    }
    panic!("strategy for {what:?} rejected 10000 consecutive draws");
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> Option<U> {
        self.inner.generate(rng).map(&self.f)
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<S2::Value> {
        let mid = self.inner.generate(rng)?;
        (self.f)(mid).generate(rng)
    }
}

pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    _whence: &'static str,
}

impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> Option<U> {
        self.inner.generate(rng).and_then(&self.f)
    }
}

/// Always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                Some(self.start + rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return Some(lo + rng.next_u64() as $t);
                }
                Some(lo + rng.below(span + 1) as $t)
            }
        }
    )*};
}

int_range_strategy!(usize, u8, u16, u32, u64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> Option<f64> {
        Some(self.start + rng.unit_f64() * (self.end - self.start))
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> Option<f64> {
        Some(self.start() + rng.unit_f64() * (self.end() - self.start()))
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($name,)+) = self;
                Some(($($name.generate(rng)?,)+))
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

/// Full-range strategy for a type, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`]: a fixed size or a range.
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec length range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty vec length range");
            lo + rng.below((hi - lo + 1) as u64) as usize
        }
    }

    /// Strategy producing a `Vec` of values from an element strategy.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let n = self.len.pick(rng);
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push(self.element.generate(rng)?);
            }
            Some(out)
        }
    }
}

pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy that picks one element of a fixed list.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> Option<T> {
            let i = rng.below(self.options.len() as u64) as usize;
            Some(self.options[i].clone())
        }
    }
}

/// Render a failing case header like upstream's minimal-failure report.
pub fn fail_header(test_name: &str, case: u32) -> String {
    let mut s = String::new();
    let _ = write!(s, "proptest case {case} of test {test_name} failed");
    s
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Upstream `prop_assume!` rejects the case; without shrinking machinery we
/// simply skip the remainder of the case body via early return.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(
                        let $pat = $crate::sample_strategy(
                            &($strat),
                            &mut __rng,
                            stringify!($pat),
                        );
                    )+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs((m, n) in (1usize..=10, 1usize..=20), v in prop::collection::vec(0u8..=2, 0..30)) {
            prop_assert!((1..=10).contains(&m));
            prop_assert!((1..=20).contains(&n));
            prop_assert!(v.len() < 30);
            prop_assert!(v.iter().all(|&g| g <= 2));
        }

        #[test]
        fn flat_map_links_sizes(v in (1usize..=5).prop_flat_map(|k| prop::collection::vec(0u32..10, k).prop_map(move |v| (k, v)))) {
            let (k, v) = v;
            prop_assert_eq!(v.len(), k);
        }

        #[test]
        fn filter_map_retries(x in (0u32..100).prop_filter_map("even only", |x| (x % 2 == 0).then_some(x))) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn select_picks_members(b in prop::sample::select(vec![64usize, 128, 256])) {
            prop_assert!([64, 128, 256].contains(&b));
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
