//! Offline stand-in for the subset of [rayon](https://crates.io/crates/rayon)
//! used by this workspace.
//!
//! The build environment has no registry access, so this crate provides the
//! same names with a simple chunked std::thread implementation: a parallel
//! iterator is materialised eagerly, split into one contiguous chunk per
//! worker, and each chunk is folded on its own scoped thread. That matches
//! what the workspace needs from rayon — `into_par_iter` / `par_iter`,
//! `with_min_len`, `fold`, `reduce`, `collect`, `ThreadPoolBuilder`,
//! `install`, and `scope` — with real parallelism, if not work stealing.

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::ops::Range;

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

thread_local! {
    static POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

fn current_threads() -> usize {
    let n = POOL_THREADS.with(Cell::get);
    if n > 0 {
        n
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Error type for [`ThreadPoolBuilder::build`]; construction cannot fail
/// in the shim.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            threads: self.num_threads,
        })
    }

    /// The shim has no global pool; accepted for API compatibility.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        Ok(())
    }
}

/// A scoped thread-count override: code run under [`ThreadPool::install`]
/// sees this pool's thread count.
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = POOL_THREADS.with(|c| c.replace(self.threads));
        let out = op();
        POOL_THREADS.with(|c| c.set(prev));
        out
    }
}

/// Placeholder scope handle (the workspace only uses `scope(|_| {})` to
/// warm the pool, which is a no-op here).
pub struct Scope;

pub fn scope<F: FnOnce(&Scope)>(f: F) {
    f(&Scope)
}

/// Eagerly materialised "parallel" iterator.
pub struct ParIter<I> {
    items: Vec<I>,
    min_len: usize,
}

pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
            min_len: 1,
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter {
            items: self,
            min_len: 1,
        }
    }
}

pub trait IntoParallelRefIterator<'a> {
    type Item: Send + 'a;
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
            min_len: 1,
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        self.as_slice().par_iter()
    }
}

impl<I: Send> ParIter<I> {
    pub fn with_min_len(mut self, min: usize) -> Self {
        self.min_len = min.max(1);
        self
    }

    /// Fold each worker's contiguous chunk into a per-worker accumulator,
    /// like rayon's `fold`: the result holds one state per chunk.
    pub fn fold<S, ID, F>(self, identity: ID, fold_op: F) -> FoldStates<S>
    where
        S: Send,
        ID: Fn() -> S + Sync,
        F: Fn(S, I) -> S + Sync,
    {
        let n = self.items.len();
        if n == 0 {
            return FoldStates { states: Vec::new() };
        }
        let workers = current_threads().max(1);
        let chunk = n.div_ceil(workers).max(self.min_len);
        let mut chunks: Vec<Vec<I>> = Vec::new();
        let mut items = self.items;
        while !items.is_empty() {
            let rest = items.split_off(items.len().min(chunk));
            chunks.push(std::mem::replace(&mut items, rest));
        }
        let mut states: Vec<Option<S>> = Vec::new();
        states.resize_with(chunks.len(), || None);
        std::thread::scope(|scope| {
            let identity = &identity;
            let fold_op = &fold_op;
            let mut handles = Vec::with_capacity(chunks.len());
            for part in chunks {
                handles.push(scope.spawn(move || {
                    let mut acc = identity();
                    for item in part {
                        acc = fold_op(acc, item);
                    }
                    acc
                }));
            }
            for (slot, handle) in states.iter_mut().zip(handles) {
                *slot = Some(handle.join().expect("rayon-shim worker panicked"));
            }
        });
        FoldStates {
            states: states.into_iter().flatten().collect(),
        }
    }
}

/// Per-chunk fold states; supports the `collect` / `reduce` consumers the
/// workspace uses after `fold`.
pub struct FoldStates<S> {
    states: Vec<S>,
}

impl<S> FoldStates<S> {
    pub fn collect<C: FromIterator<S>>(self) -> C {
        self.states.into_iter().collect()
    }

    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> S
    where
        ID: Fn() -> S,
        OP: Fn(S, S) -> S,
    {
        self.states.into_iter().fold(identity(), op)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn fold_collect_covers_every_item() {
        let states: Vec<u64> = (0..1000usize)
            .into_par_iter()
            .with_min_len(4)
            .fold(|| 0u64, |acc, i| acc + i as u64)
            .collect();
        assert_eq!(states.iter().sum::<u64>(), 499_500);
    }

    #[test]
    fn par_iter_reduce_matches_serial() {
        let data: Vec<u32> = (1..=100).collect();
        let sum = data
            .par_iter()
            .fold(|| 0u64, |acc, &x| acc + u64::from(x))
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(sum, 5050);
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let states: Vec<u32> = pool.install(|| {
            (0..10usize)
                .into_par_iter()
                .fold(|| 0u32, |a, _| a + 1)
                .collect()
        });
        assert!(states.len() <= 2);
        assert_eq!(states.iter().sum::<u32>(), 10);
    }
}
