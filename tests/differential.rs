//! Cross-tier differential test harness (PR 4).
//!
//! The paper's central correctness claim is that every kernel
//! configuration — SIMD tier, interaction order, cache budget — produces
//! **bit-identical** results. Hand-spot-checking that configuration space
//! does not scale (SMSI's argument for systematic configuration
//! verification), so this harness sweeps it mechanically: the same
//! randomized scans run at every host-supported `SimdLevel` × orders
//! 2–4 × cross-pair budgets {0, tiny, detected, huge}, and every cell
//! table and top-K list is compared against the scalar reference.
//!
//! On a mismatch the assertion message leads with a minimal repro spec
//! (`repro: m=.. n=.. seed=.. simd=.. order=.. budget=..`) so a failure
//! seen in a forced-tier CI shard can be replayed locally in one line.
//!
//! Environment knobs (the CI forced-tier matrix drives all three):
//! * `EPI3_SIMD=<tier>` — restrict the tier sweep to {scalar, tier}
//!   (clamped to the host), mirroring the CLI/server override;
//! * `EPI3_DIFF_CASES=N` — randomized cases per test (default 4);
//! * `EPI3_DIFF_THREADS=N` — restrict the thread-invariance sweep to
//!   {1, N} (default {1, 2, 3, 7}); CI runs the matrix legs at 4.
//!
//! PR 6 adds the distribution axis: the same scan federated over
//! loopback fleets of real epi-servers (1 node, 2 nodes, and 2 nodes
//! with one killed mid-scan) must merge bit-identically to the scalar
//! monolithic reference.

use std::collections::HashMap;
use threeway_epistasis::bitgenome::{GenotypeMatrix, Phenotype, SimdLevel, SplitDataset};
use threeway_epistasis::epi_core::k2::{K2Scorer, Objective};
use threeway_epistasis::epi_core::result::{TopK, Triple};
use threeway_epistasis::epi_core::table27::ContingencyTable;
use threeway_epistasis::epi_core::versions::{BlockedScanner, V5Scratch};
use threeway_epistasis::epi_core::{kway, BlockParams, PrefixCache};

/// Minimal repro spec printed first in every assertion message.
#[derive(Clone, Copy)]
struct Repro {
    m: usize,
    n: usize,
    seed: u64,
    simd: SimdLevel,
    order: usize,
    budget: Option<usize>,
}

impl std::fmt::Display for Repro {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "repro: m={} n={} seed={} simd={} order={}",
            self.m,
            self.n,
            self.seed,
            self.simd.token(),
            self.order
        )?;
        if let Some(b) = self.budget {
            write!(f, " budget={b}")?;
        }
        Ok(())
    }
}

/// Tiers under test: all host-supported ones, or {scalar, forced} when
/// the EPI3_SIMD override is set (the CI matrix mode).
fn tiers_under_test() -> Vec<SimdLevel> {
    match std::env::var("EPI3_SIMD") {
        Ok(name) if !name.is_empty() => {
            let forced = SimdLevel::parse_token(&name)
                .expect("EPI3_SIMD must name a valid tier")
                .clamped_to_host();
            let mut tiers = vec![SimdLevel::Scalar];
            if forced != SimdLevel::Scalar {
                tiers.push(forced);
            }
            tiers
        }
        _ => SimdLevel::available(),
    }
}

/// Randomized cases per test (`EPI3_DIFF_CASES`, default 4).
fn case_count() -> u64 {
    std::env::var("EPI3_DIFF_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(4)
}

/// Worker counts of the thread-invariance sweep: {1, N} under the
/// `EPI3_DIFF_THREADS` override (the CI matrix mode), {1, 2, 3, 7}
/// otherwise. Counts above the host's cores still exercise real
/// multi-worker interleaving — the pool spawns them; the OS timeslices.
fn threads_under_test() -> Vec<usize> {
    match std::env::var("EPI3_DIFF_THREADS") {
        Ok(n) if !n.is_empty() => {
            let n: usize = n.parse().expect("EPI3_DIFF_THREADS must be a number");
            assert!(n > 0, "EPI3_DIFF_THREADS must be positive");
            if n == 1 {
                vec![1]
            } else {
                vec![1, n]
            }
        }
        _ => vec![1, 2, 3, 7],
    }
}

/// The four budget settings of the sweep: disabled, too tiny to admit
/// anything realistic, the host-adaptive detected budget, and unbounded.
fn budget_settings() -> [(&'static str, usize); 4] {
    [
        ("0", 0),
        ("tiny", 4096),
        ("detected", BlockParams::with_detected_budget()),
        ("huge", usize::MAX),
    ]
}

fn dataset(m: usize, n: usize, seed: u64) -> (GenotypeMatrix, Phenotype) {
    let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15).max(1);
    let mut next = move || {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
        s >> 33
    };
    let data: Vec<u8> = (0..m * n).map(|_| (next() % 3) as u8).collect();
    let labels: Vec<u8> = (0..n).map(|_| (next() % 2) as u8).collect();
    (
        GenotypeMatrix::from_raw(m, n, data),
        Phenotype::from_labels(labels),
    )
}

/// Collect every cell table and the K2 top-K of a blocked V5 scan at one
/// (tier, budget, block shape) configuration.
fn v5_tables_and_topk(
    ds: &SplitDataset,
    params: BlockParams,
    level: SimdLevel,
    budget: usize,
    top_k: usize,
) -> (HashMap<Triple, ContingencyTable>, Vec<(u64, Triple)>) {
    let scanner = BlockedScanner::new(ds, params, level).with_cross_pair_budget(budget);
    let scorer = K2Scorer::new(ds.num_samples());
    let mut tables = HashMap::new();
    let mut top = TopK::new(top_k);
    let mut scratch = V5Scratch::new();
    for bt in scanner.tasks() {
        scanner.scan_block_triple_v5(bt, &mut scratch, &mut |t, ctrl, case| {
            let table = ContingencyTable::from_counts(*ctrl, *case);
            top.push(scorer.score(&table), t);
            let prev = tables.insert(t, table);
            assert!(prev.is_none(), "triple {t:?} emitted twice");
        });
    }
    let top = top
        .into_sorted()
        .into_iter()
        .map(|c| (c.score.to_bits(), c.triple))
        .collect();
    (tables, top)
}

/// The tentpole sweep: order 3 through the blocked V5 kernel at every
/// tier × budget, orders 2 and 4 through the k-way prefix cache at every
/// tier — all against scalar/seed-kernel references, bit-exact.
#[test]
fn differential_matrix_is_bit_identical_to_scalar() {
    let tiers = tiers_under_test();
    assert!(!tiers.is_empty() && tiers[0] == SimdLevel::Scalar);
    println!(
        "differential matrix: tiers {:?} x orders 2-4 x budgets {:?} x {} cases",
        tiers.iter().map(|l| l.token()).collect::<Vec<_>>(),
        budget_settings().map(|(name, _)| name),
        case_count(),
    );

    for case in 0..case_count() {
        let seed = 0xD1FF + case * 7919;
        let m = 9 + (case as usize % 3) * 2; // 9, 11, 13 SNPs
        let n = 96 + (case as usize % 4) * 33; // awkward sample counts
        let (g, p) = dataset(m, n, seed);
        let ds = SplitDataset::encode(&g, &p);
        let params = BlockParams { bs: 3, bp: 64 };

        // ---- order 3: scalar reference, then the tier x budget sweep
        let (ref_tables, ref_top) = v5_tables_and_topk(
            &ds,
            params,
            SimdLevel::Scalar,
            BlockParams::with_detected_budget(),
            8,
        );
        for &level in &tiers {
            for (bname, budget) in budget_settings() {
                let repro = Repro {
                    m,
                    n,
                    seed,
                    simd: level,
                    order: 3,
                    budget: Some(budget),
                };
                let (tables, top) = v5_tables_and_topk(&ds, params, level, budget, 8);
                assert_eq!(
                    tables.len(),
                    ref_tables.len(),
                    "{repro} ({bname}): combination coverage differs"
                );
                for (t, table) in &tables {
                    assert_eq!(
                        table, &ref_tables[t],
                        "{repro} ({bname}): cell table differs at {t:?}"
                    );
                }
                assert_eq!(
                    top, ref_top,
                    "{repro} ({bname}): top-K differs from scalar reference"
                );
            }
        }

        // ---- orders 2 and 4: k-way prefix cache vs the seed kernel
        let km = 7.min(m); // keep C(m,4) sweeps cheap
        let (kg, kp) = dataset(km, n, seed ^ 0xABCD);
        let kds = SplitDataset::encode(&kg, &kp);
        for order in [2usize, 4] {
            let mut combos: Vec<Vec<usize>> = Vec::new();
            threeway_epistasis::epi_core::combin::for_each_combo(
                km,
                order,
                &mut |c: &[usize]| combos.push(c.to_vec()),
            );
            let reference: Vec<_> = combos
                .iter()
                .map(|c| kway::table_for_combo(&kds, c))
                .collect();
            for &level in &tiers {
                let repro = Repro {
                    m: km,
                    n,
                    seed,
                    simd: level,
                    order,
                    budget: None,
                };
                let mut cache = PrefixCache::new(order, level);
                for (c, want) in combos.iter().zip(&reference) {
                    assert_eq!(
                        cache.table_for_combo(&kds, c),
                        *want,
                        "{repro}: order-{order} table differs at {c:?}"
                    );
                }
            }
        }
    }
}

/// The PR 5 axis: thread-count and scheduler invariance of the blocked
/// V5 path with the cross-pair cache enabled. For every tier × worker
/// count × scheduler (run-aware and the chunk-1 baseline) the **entire
/// score surface** must be bit-identical to the single-threaded scalar
/// reference: `top_k` is set to `C(m, 3)`, so the comparison covers every
/// combination's score and triple, not just the winners — a wrong cell
/// in any table on any worker cannot hide.
#[test]
fn blocked_v5_is_thread_and_scheduler_invariant() {
    use threeway_epistasis::epi_core::scan::{
        scan_split, scan_split_with_workers, ScanConfig, Scheduler, Version,
    };

    let threads = threads_under_test();
    println!(
        "thread invariance: tiers {:?} x workers {threads:?} x schedulers [run-aware, chunk-1]",
        tiers_under_test()
            .iter()
            .map(|l| l.token())
            .collect::<Vec<_>>(),
    );
    for case in 0..case_count() {
        let seed = 0x7A6B + case * 6151;
        let m = 10 + (case as usize % 3) * 2; // 10, 12, 14 SNPs
        let n = 90 + (case as usize % 4) * 21;
        let (g, p) = dataset(m, n, seed);
        let ds = SplitDataset::encode(&g, &p);
        let all = threeway_epistasis::epi_core::combin::num_triples(m) as usize;

        let mut ref_cfg = ScanConfig::new(Version::V5);
        ref_cfg.top_k = all;
        ref_cfg.simd = Some(SimdLevel::Scalar);
        ref_cfg.threads = 1;
        let want = scan_split(&ds, &ref_cfg).top;
        assert_eq!(want.len(), all);

        for level in tiers_under_test() {
            for &workers in &threads {
                for scheduler in [Scheduler::Pool, Scheduler::PoolChunk1] {
                    let repro = Repro {
                        m,
                        n,
                        seed,
                        simd: level,
                        order: 3,
                        budget: None,
                    };
                    let mut cfg = ScanConfig::new(Version::V5);
                    cfg.top_k = all;
                    cfg.simd = Some(level);
                    cfg.scheduler = scheduler;
                    // exact worker counts (not host-clamped): >1 worker
                    // must interleave for real even on small CI boxes
                    let (res, stats) = scan_split_with_workers(&ds, &cfg, workers);
                    assert_eq!(
                        res.top.len(),
                        want.len(),
                        "{repro} workers={workers} {scheduler:?}"
                    );
                    for (a, b) in res.top.iter().zip(&want) {
                        assert_eq!(
                            a.triple, b.triple,
                            "{repro} workers={workers} {scheduler:?}"
                        );
                        assert_eq!(
                            a.score.to_bits(),
                            b.score.to_bits(),
                            "{repro} workers={workers} {scheduler:?}: score must be bit-identical"
                        );
                    }
                    // the cache was actually exercised (the invariance
                    // must not be vacuous) and every task consulted it
                    let stats = stats.expect("V5 reports cross-pair stats");
                    assert!(
                        stats.hits() + stats.misses() > 0,
                        "{repro}: cross-pair cache never consulted"
                    );
                }
            }
        }
    }
}

/// The PR 6 axis: multi-node federation. One spec, four execution
/// shapes — monolithic, a 1-node fleet, a 2-node fleet, and a 2-node
/// fleet that loses a member mid-scan — must all produce bit-identical
/// top-Ks. The fleet legs run at every tier under test (the spec's
/// `simd=` key forces the servers' kernels); the kill leg runs once at
/// the default tier, with a watcher thread that waits for the victim to
/// complete at least one shard before shutting it down, so work is
/// genuinely lost and reassigned rather than never started.
#[test]
fn federated_scan_matches_monolithic_at_every_tier() {
    use std::time::Duration;
    use threeway_epistasis::datagen;
    use threeway_epistasis::epi_coord::{federate, FederationConfig};
    use threeway_epistasis::epi_core::scan::{scan, ScanConfig, Version};
    use threeway_epistasis::epi_server::{Client, EngineConfig, JobSpec, Server, ServerHandle};

    fn fleet(n: usize) -> (Vec<String>, Vec<ServerHandle>) {
        let mut addrs = Vec::new();
        let mut handles = Vec::new();
        for _ in 0..n {
            let server = Server::bind(
                "127.0.0.1:0",
                EngineConfig {
                    workers: 0,
                    spool_dir: None,
                    default_simd: None,
                    dataset_root: None,
                    ..EngineConfig::default()
                },
            )
            .expect("bind loopback");
            addrs.push(server.local_addr().to_string());
            handles.push(server.spawn());
        }
        (addrs, handles)
    }
    fn config(addrs: Vec<String>) -> FederationConfig {
        let mut cfg = FederationConfig::new(addrs);
        cfg.poll_cap = Duration::from_millis(20);
        cfg.steal_patience = Duration::from_millis(50);
        cfg
    }

    let (m, n, seed) = (20usize, 160usize, 0xFED5EED);
    let data = datagen::DatasetSpec::noise(m, n, seed).generate();
    let dir = std::env::temp_dir().join("epi3_differential");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("fed-{}.epi3", std::process::id()));
    datagen::io::save_binary(&path, &data).unwrap();
    let path_s = path.to_string_lossy().into_owned();

    // the monolithic reference: scalar, single-threaded
    let mut ref_cfg = ScanConfig::new(Version::V5);
    ref_cfg.top_k = 8;
    ref_cfg.simd = Some(SimdLevel::Scalar);
    ref_cfg.threads = 1;
    let want = scan(&data.genotypes, &data.phenotype, &ref_cfg).top;
    assert_eq!(want.len(), 8);

    for level in tiers_under_test() {
        for nodes in [1usize, 2] {
            let repro = Repro {
                m,
                n,
                seed,
                simd: level,
                order: 3,
                budget: None,
            };
            let (addrs, handles) = fleet(nodes);
            let mut spec = JobSpec::new(&path_s);
            spec.shards = 12;
            spec.top_k = 8;
            spec.simd = Some(level);
            let report = federate(&spec, &config(addrs)).expect("federation");
            for h in handles {
                h.shutdown();
            }
            assert_eq!(report.top.len(), want.len(), "{repro} nodes={nodes}");
            for (a, b) in report.top.iter().zip(&want) {
                assert_eq!(a.triple, b.triple, "{repro} nodes={nodes}");
                assert_eq!(
                    a.score.to_bits(),
                    b.score.to_bits(),
                    "{repro} nodes={nodes}: federated score must be bit-identical"
                );
            }
        }
    }

    // the fault leg: one of two nodes dies mid-scan; the merge must not
    // notice (exact shard accounting makes re-execution duplicate-free)
    {
        let (addrs, mut handles) = fleet(2);
        let mut spec = JobSpec::new(&path_s);
        spec.shards = 12;
        spec.top_k = 8;
        spec.throttle_ms = 25; // keep the victim mid-scan long enough to die there
        let victim = addrs[1].clone();
        let killer = std::thread::spawn(move || {
            let deadline = std::time::Instant::now() + Duration::from_secs(60);
            while std::time::Instant::now() < deadline {
                if let Ok(mut c) =
                    Client::connect_with_deadline(victim.as_str(), Duration::from_secs(2))
                {
                    let progressed = c
                        .jobs()
                        .map(|js| js.iter().any(|j| j.done >= 1 && j.done < j.total));
                    if matches!(progressed, Ok(true)) {
                        let _ = c.shutdown();
                        return;
                    }
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            panic!("victim never made progress");
        });
        let report = federate(&spec, &config(addrs.clone())).expect("federation survives the kill");
        killer.join().unwrap();
        assert_eq!(
            report.dead_nodes,
            vec![addrs[1].clone()],
            "the killed node must be declared dead"
        );
        assert_eq!(report.top.len(), want.len(), "killed-node leg");
        for (a, b) in report.top.iter().zip(&want) {
            assert_eq!(a.triple, b.triple, "killed-node leg");
            assert_eq!(
                a.score.to_bits(),
                b.score.to_bits(),
                "killed-node leg: score must be bit-identical"
            );
        }
        handles.remove(1); // killed itself; shutdown() would hang
        for h in handles {
            h.shutdown();
        }
    }

    // the crash leg: the *coordinator* dies mid-merge and a fresh one
    // resumes from the spooled checkpoint; adopted shards are never
    // rescanned, and the merged top-K must still match the monolithic
    // reference bit for bit
    {
        use threeway_epistasis::epi_coord::resume_from_spool;
        let (addrs, handles) = fleet(2);
        let spool = dir.join(format!("fed-{}.fedckpt", std::process::id()));
        let mut spec = JobSpec::new(&path_s);
        spec.shards = 12;
        spec.top_k = 8;
        spec.throttle_ms = 5; // slow enough for >=4 merge batches to spool
        let mut cfg = config(addrs.clone());
        cfg.spool_path = Some(spool.clone());
        cfg.fail_after_merges = Some(4);
        let err = federate(&spec, &cfg).expect_err("injected coordinator crash must fire");
        assert!(err.contains("injected coordinator crash"), "{err}");
        cfg.fail_after_merges = None;
        let report = resume_from_spool(&spool, &cfg).expect("resume from spool");
        for h in handles {
            h.shutdown();
        }
        assert!(
            report.resumed_merged >= 4,
            "resume must adopt the checkpointed shards, got {}",
            report.resumed_merged
        );
        assert_eq!(report.top.len(), want.len(), "crash-resume leg");
        for (a, b) in report.top.iter().zip(&want) {
            assert_eq!(a.triple, b.triple, "crash-resume leg");
            assert_eq!(
                a.score.to_bits(),
                b.score.to_bits(),
                "crash-resume leg: score must be bit-identical"
            );
        }
        let _ = std::fs::remove_file(&spool);
        let _ = std::fs::remove_file(spool.with_extension("fedckpt.prev"));
    }

    let _ = std::fs::remove_file(&path);
}

/// The sharded order-3 path (the epi-server inner loop) at every tier:
/// merged shard top-Ks must be bit-identical to the scalar monolithic
/// scan, with the worker-held prefix cache warm across shard boundaries.
#[test]
fn sharded_scan_matches_scalar_monolithic_at_every_tier() {
    use threeway_epistasis::epi_core::scan::{scan_split, ScanConfig, Version};
    use threeway_epistasis::epi_core::shard::{scan_shard_split_cached, ShardPlan};
    use threeway_epistasis::epi_core::PairPrefixCache;

    for case in 0..case_count() {
        let seed = 0x5A4D + case * 104729;
        let (m, n) = (12, 100 + (case as usize % 3) * 15);
        let (g, p) = dataset(m, n, seed);
        let ds = SplitDataset::encode(&g, &p);

        let mut ref_cfg = ScanConfig::new(Version::V5);
        ref_cfg.top_k = 6;
        ref_cfg.simd = Some(SimdLevel::Scalar);
        ref_cfg.threads = 1;
        let want = scan_split(&ds, &ref_cfg).top;

        for level in tiers_under_test() {
            let repro = Repro {
                m,
                n,
                seed,
                simd: level,
                order: 3,
                budget: None,
            };
            let mut cfg = ScanConfig::new(Version::V5);
            cfg.top_k = 6;
            cfg.simd = Some(level);
            cfg.threads = 1;
            let plan = ShardPlan::triples(m, 9);
            let mut cache = PairPrefixCache::new(level);
            let mut merged = TopK::new(cfg.top_k);
            for range in plan.ranges() {
                merged.merge(scan_shard_split_cached(&ds, &cfg, range, &mut cache));
            }
            let got = merged.into_sorted();
            assert_eq!(got.len(), want.len(), "{repro}");
            for (a, b) in got.iter().zip(&want) {
                assert_eq!(a.triple, b.triple, "{repro}");
                assert_eq!(
                    a.score.to_bits(),
                    b.score.to_bits(),
                    "{repro}: shard-merged score must be bit-identical"
                );
            }
        }
    }
}
