//! End-to-end tests of the TCP job service over loopback: submit → poll
//! → result matches `detect()`, plus cancellation and checkpoint resume
//! without rescanning completed shards.

use std::time::Duration;
use threeway_epistasis::epi_server::{EngineConfig, Server};
use threeway_epistasis::prelude::*;

fn write_planted_dataset(tag: &str, m: usize, n: usize, plant: [usize; 3]) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("epi3_job_service_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{tag}-{}-{m}x{n}.epi3", std::process::id()));
    let data = DatasetSpec::with_planted_triple(m, n, plant, 99).generate();
    datagen::io::save_binary(&path, &data).unwrap();
    path
}

fn start_server(
    workers: usize,
    spool: Option<std::path::PathBuf>,
) -> (
    std::net::SocketAddr,
    threeway_epistasis::epi_server::ServerHandle,
) {
    let server = Server::bind(
        "127.0.0.1:0",
        EngineConfig {
            workers,
            spool_dir: spool,
            default_simd: None,
            dataset_root: None,
            ..EngineConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    (addr, server.spawn())
}

#[test]
fn loopback_job_returns_the_planted_triple() {
    let path = write_planted_dataset("e2e", 32, 512, [4, 13, 27]);
    let (addr, handle) = start_server(2, None);

    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();

    let mut spec = JobSpec::new(path.to_str().unwrap());
    spec.shards = 24;
    spec.top_k = 10;
    let submitted = client.submit(&spec).unwrap();
    assert_eq!(submitted.total, 24);

    // poll STATUS until done
    let done = client.wait(submitted.id, Duration::from_secs(120)).unwrap();
    assert_eq!(done.state, JobState::Done, "status: {done:?}");
    assert_eq!(done.done, 24);

    // RESULT matches detect() bit-for-bit and finds the planted triple
    let got = client.result(submitted.id).unwrap();
    let (g, p) = datagen::io::load(&path).unwrap();
    let want = threeway_epistasis::detect(&g, &p);
    assert_eq!(got.len(), want.top.len());
    for (a, b) in got.iter().zip(&want.top) {
        assert_eq!(a.triple, b.triple);
        assert_eq!(a.score.to_bits(), b.score.to_bits());
    }
    assert_eq!(got[0].triple, (4, 13, 27), "planted triple wins");

    // server-side counters visible over the wire (worker requests are
    // clamped to the host's parallelism, like every thread knob)
    let (jobs, scanned, workers) = client.stats().unwrap();
    assert_eq!(jobs, 1);
    assert_eq!(scanned, 24);
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1) as u64;
    assert_eq!(workers, 2.min(avail));

    // pool-aggregated pair-prefix cache stats: every triple consulted a
    // cache exactly once, and the run-aware batch claiming kept the
    // pool-wide hit rate at the sequential level
    let (hits, misses, rate, min_rate, max_rate) = client.stats_pair_cache().unwrap();
    assert_eq!(
        hits + misses,
        threeway_epistasis::epi_core::combin::num_triples(32)
    );
    assert!(rate > 0.5, "pool-wide hit rate {rate}");
    assert!((0.0..=max_rate).contains(&min_rate) && max_rate <= 1.0);

    handle.shutdown();
}

#[test]
fn multiple_clients_and_jobs_share_one_server() {
    let path_a = write_planted_dataset("multi-a", 20, 256, [2, 9, 15]);
    let path_b = write_planted_dataset("multi-b", 18, 192, [1, 7, 12]);
    let (addr, handle) = start_server(3, None);

    let mut c1 = Client::connect(addr).unwrap();
    let mut c2 = Client::connect(addr).unwrap();

    let mut spec_a = JobSpec::new(path_a.to_str().unwrap());
    spec_a.shards = 10;
    spec_a.top_k = 3;
    let mut spec_b = JobSpec::new(path_b.to_str().unwrap());
    spec_b.shards = 5;
    spec_b.top_k = 3;
    spec_b.version = Version::V2;

    let job_a = c1.submit(&spec_a).unwrap();
    let job_b = c2.submit(&spec_b).unwrap();
    assert_ne!(job_a.id, job_b.id);

    let done_a = c1.wait(job_a.id, Duration::from_secs(120)).unwrap();
    let done_b = c2.wait(job_b.id, Duration::from_secs(120)).unwrap();
    assert_eq!(done_a.state, JobState::Done);
    assert_eq!(done_b.state, JobState::Done);

    // each job's result is its own dataset's scan
    let (ga, pa) = datagen::io::load(&path_a).unwrap();
    let mut cfg = ScanConfig::new(Version::V4);
    cfg.top_k = 3;
    assert_eq!(
        c2.result(job_a.id).unwrap(),
        detect_with(&ga, &pa, &cfg).top
    );

    let (gb, pb) = datagen::io::load(&path_b).unwrap();
    let mut cfg_b = ScanConfig::new(Version::V2);
    cfg_b.top_k = 3;
    assert_eq!(
        c1.result(job_b.id).unwrap(),
        detect_with(&gb, &pb, &cfg_b).top
    );

    // JOBS lists both, newest first
    let jobs = c1.jobs().unwrap();
    assert_eq!(jobs.len(), 2);
    assert!(jobs[0].id > jobs[1].id);

    handle.shutdown();
}

#[test]
fn cancel_keeps_checkpoint_and_resume_never_rescans() {
    let path = write_planted_dataset("cancel", 24, 320, [3, 10, 19]);
    let (addr, handle) = start_server(2, None);
    let mut client = Client::connect(addr).unwrap();

    let mut spec = JobSpec::new(path.to_str().unwrap());
    spec.shards = 20;
    spec.top_k = 5;
    spec.throttle_ms = 25; // widen the cancellation window
    let job = client.submit(&spec).unwrap();

    // cancel once a few shards have landed
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    loop {
        let s = client.status(job.id).unwrap();
        if s.done >= 3 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "job made no progress");
        std::thread::sleep(Duration::from_millis(5));
    }
    client.cancel(job.id).unwrap();
    let stable = client.wait(job.id, Duration::from_secs(60)).unwrap();
    assert!(
        matches!(stable.state, JobState::Cancelled | JobState::Done),
        "cancelled job should be stable, got {stable:?}"
    );
    assert!(
        stable.done < 20,
        "cancel landed after completion; widen throttle"
    );

    // RESULT refuses while cancelled
    assert!(client.result(job.id).is_err());

    // every completed shard was scanned exactly once so far
    let (_, scanned_before, _) = client.stats().unwrap();
    assert_eq!(scanned_before, stable.done);

    // resume: only the missing shards run
    let resumed = client.resume(job.id).unwrap();
    assert_eq!(resumed.state, JobState::Queued);
    assert_eq!(
        resumed.done, stable.done,
        "checkpointed shards survive cancel"
    );
    let done = client.wait(job.id, Duration::from_secs(120)).unwrap();
    assert_eq!(done.state, JobState::Done);

    // the no-rescan proof: lifetime scans == shard count
    let (_, scanned_after, _) = client.stats().unwrap();
    assert_eq!(scanned_after, 20);

    // and the final result is still bit-identical to the monolithic scan
    let (g, p) = datagen::io::load(&path).unwrap();
    let mut cfg = ScanConfig::new(Version::V4);
    cfg.top_k = 5;
    assert_eq!(
        client.result(job.id).unwrap(),
        detect_with(&g, &p, &cfg).top
    );

    handle.shutdown();
}

#[test]
fn forced_scalar_tier_echoes_in_status_and_matches_unforced() {
    use threeway_epistasis::bitgenome::SimdLevel;
    let path = write_planted_dataset("simd", 18, 224, [2, 8, 14]);
    let (addr, handle) = start_server(2, None);
    let mut client = Client::connect(addr).unwrap();

    // unforced reference job
    let base_spec = JobSpec::new(path.to_str().unwrap());
    let base = client.submit(&base_spec).unwrap();
    assert_eq!(base.simd, None, "unforced job must not echo a tier");
    client.wait(base.id, Duration::from_secs(120)).unwrap();
    let want = client.result(base.id).unwrap();

    // simd=scalar in the spec: STATUS echoes the tier end to end and the
    // result is bit-identical to the unforced run
    let mut spec = JobSpec::new(path.to_str().unwrap());
    spec.simd = Some(SimdLevel::Scalar);
    let st = client.submit(&spec).unwrap();
    assert_eq!(st.simd, Some(SimdLevel::Scalar), "SUBMIT reply echo");
    let polled = client.status(st.id).unwrap();
    assert_eq!(polled.simd, Some(SimdLevel::Scalar), "STATUS echo");
    let done = client.wait(st.id, Duration::from_secs(120)).unwrap();
    assert_eq!(done.state, JobState::Done);
    assert_eq!(done.simd, Some(SimdLevel::Scalar));
    let got = client.result(st.id).unwrap();
    assert_eq!(got.len(), want.len());
    for (a, b) in got.iter().zip(&want) {
        assert_eq!(a.triple, b.triple);
        assert_eq!(
            a.score.to_bits(),
            b.score.to_bits(),
            "forced-scalar result must be bit-identical to unforced"
        );
    }

    // a tier above the server's capability is clamped, never a crash
    let mut over_spec = JobSpec::new(path.to_str().unwrap());
    over_spec.simd = Some(SimdLevel::Avx512Vpopcnt);
    let over = client.submit(&over_spec).unwrap();
    assert_eq!(over.simd, Some(SimdLevel::Avx512Vpopcnt.clamped_to_host()));
    client.wait(over.id, Duration::from_secs(120)).unwrap();

    // an unsupported tier *name* is a clean protocol error, not a panic —
    // and the connection (and server) survive to serve the next request
    use std::io::{BufRead, BufReader, Write};
    let mut raw = std::net::TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(raw.try_clone().unwrap());
    raw.write_all(format!("SUBMIT path={} simd=sse9\n", path.to_str().unwrap()).as_bytes())
        .unwrap();
    raw.flush().unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(
        line.starts_with("ERR") && line.contains("sse9"),
        "unsupported tier must be a clean error, got {line:?}"
    );
    raw.write_all(b"PING\n").unwrap();
    raw.flush().unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("OK pong"), "server must survive: {line:?}");

    handle.shutdown();
}

#[test]
fn shard_set_jobs_and_progress_verbs_work_over_the_wire() {
    use threeway_epistasis::epi_core::shard::ShardSet;
    let path = write_planted_dataset("fedverbs", 20, 256, [3, 8, 16]);
    let (addr, handle) = start_server(2, None);
    let mut client = Client::connect(addr).unwrap();

    // two sub-jobs partitioning one 10-shard global plan
    let mut spec_a = JobSpec::new(path.to_str().unwrap());
    spec_a.shards = 10;
    spec_a.top_k = 4;
    let mut spec_b = spec_a.clone();
    spec_a.shard_set = Some(ShardSet::from_range(0..6));
    spec_b.shard_set = Some(ShardSet::from_range(6..10));
    let a = client.submit(&spec_a).unwrap();
    let b = client.submit(&spec_b).unwrap();
    assert_eq!(a.total, 6);
    assert_eq!(b.total, 4);
    assert_eq!(
        client.wait(a.id, Duration::from_secs(120)).unwrap().state,
        JobState::Done
    );
    assert_eq!(
        client.wait(b.id, Duration::from_secs(120)).unwrap().state,
        JobState::Done
    );

    // SHARDS_DONE reports exactly each sub-job's owned partition
    assert_eq!(
        client.shards_done(a.id).unwrap(),
        ShardSet::from_range(0..6)
    );
    assert_eq!(
        client.shards_done(b.id).unwrap(),
        ShardSet::from_range(6..10)
    );

    // PARTIAL dumps per-shard candidates; merging the two partitions per
    // shard index reproduces the monolithic scan bit-for-bit
    let mut top = threeway_epistasis::epi_core::result::TopK::new(4);
    for id in [a.id, b.id] {
        for (_, cands) in client.partial(id).unwrap() {
            for c in cands {
                top.push(c.score, c.triple);
            }
        }
    }
    let (g, p) = datagen::io::load(&path).unwrap();
    let mut cfg = ScanConfig::new(Version::V5);
    cfg.top_k = 4;
    let want = detect_with(&g, &p, &cfg).top;
    let got = top.into_sorted();
    assert_eq!(got.len(), want.len());
    for (x, y) in got.iter().zip(&want) {
        assert_eq!(x.triple, y.triple);
        assert_eq!(x.score.to_bits(), y.score.to_bits());
    }

    // both verbs fail cleanly on unknown jobs
    assert!(client.shards_done(999).is_err());
    assert!(client.partial(999).is_err());

    handle.shutdown();
}

#[test]
fn client_deadline_turns_a_silent_peer_into_a_clean_timeout() {
    // a listener that never answers: connection succeeds (backlog), but
    // every request goes unreplied — exactly what a hung node looks like
    let silent = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = silent.local_addr().unwrap();

    let mut client = Client::connect_with_deadline(addr, Duration::from_millis(150)).unwrap();
    let start = std::time::Instant::now();
    let err = client.ping().unwrap_err();
    assert!(
        err.contains("timed out"),
        "expected a clean timeout error, got {err:?}"
    );
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "deadline must fire promptly, took {:?}",
        start.elapsed()
    );

    // against a live server the deadline-enabled client works normally
    let (srv_addr, handle) = start_server(1, None);
    let mut live = Client::connect_with_deadline(srv_addr, Duration::from_secs(5)).unwrap();
    live.ping().unwrap();
    handle.shutdown();
}

#[test]
fn connections_surviving_shutdown_are_refused() {
    let (addr, handle) = start_server(1, None);
    use std::io::{BufRead, BufReader, Write};

    // open a second connection BEFORE shutdown
    let mut survivor = std::net::TcpStream::connect(addr).unwrap();
    let mut survivor_reader = BufReader::new(survivor.try_clone().unwrap());

    let mut client = Client::connect(addr).unwrap();
    client.shutdown().unwrap();
    std::thread::sleep(Duration::from_millis(200));

    // the surviving connection must not be able to enqueue work on an
    // engine whose workers are gone
    survivor
        .write_all(b"SUBMIT path=/tmp/whatever.epi3\n")
        .unwrap();
    survivor.flush().unwrap();
    let mut line = String::new();
    let n = survivor_reader.read_line(&mut line).unwrap_or(0);
    assert!(
        n == 0 || line.starts_with("ERR"),
        "post-shutdown request must be refused or the socket closed, got {line:?}"
    );

    handle.shutdown();
}

#[test]
fn protocol_rejects_garbage_gracefully() {
    let (addr, handle) = start_server(1, None);
    use std::io::{BufRead, BufReader, Write};

    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut say = |req: &str, reader: &mut BufReader<std::net::TcpStream>| {
        stream.write_all(req.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        stream.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line
    };
    assert!(say("FROBNICATE", &mut reader).starts_with("ERR unknown verb"));
    assert!(say("STATUS notanumber", &mut reader).starts_with("ERR"));
    assert!(say("STATUS 424242", &mut reader).starts_with("ERR no such job"));
    assert!(
        say("SUBMIT shards=4", &mut reader).starts_with("ERR"),
        "missing path"
    );
    assert!(say("SUBMIT path=/no/such/file.epi3", &mut reader).starts_with("ERR"));
    assert!(say("RESULT 1", &mut reader).starts_with("ERR"));
    assert!(say("PING", &mut reader).starts_with("OK pong"));

    handle.shutdown();
}
