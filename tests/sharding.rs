//! Acceptance tests for shard/merge consistency: on a 48-SNP planted
//! dataset, merging any shard partition's top-Ks must reproduce the
//! monolithic `detect()` result — same candidates, same order, same
//! score bits — for every Version and for S in {1, 7, 64}.

use epi_core::result::TopK;
use epi_core::shard::{scan_shard, ShardPlan};
use threeway_epistasis::prelude::*;

fn planted_48() -> Dataset {
    DatasetSpec::with_planted_triple(48, 640, [7, 19, 33], 20_22).generate()
}

#[test]
fn merged_shards_equal_detect_for_all_partitions() {
    let data = planted_48();
    // detect() = V5, top-10: the acceptance reference (bit-identical to
    // V4, which the loop below re-verifies against every version)
    let want = threeway_epistasis::detect(&data.genotypes, &data.phenotype);
    assert_eq!(
        want.best().unwrap().triple,
        (7, 19, 33),
        "planted triple must be detectable in the reference scan"
    );
    let mut cfg = ScanConfig::new(Version::V4);
    cfg.top_k = 10;
    for s in [1u64, 7, 64] {
        let plan = ShardPlan::triples(48, s);
        let mut merged = TopK::new(cfg.top_k);
        for range in plan.ranges() {
            merged.merge(scan_shard(&data.genotypes, &data.phenotype, &cfg, range));
        }
        let got = merged.into_sorted();
        assert_eq!(got.len(), want.top.len(), "S={s}");
        for (g, w) in got.iter().zip(&want.top) {
            assert_eq!(g.triple, w.triple, "S={s}");
            assert_eq!(
                g.score.to_bits(),
                w.score.to_bits(),
                "S={s}: merged shard scores must be bit-identical to detect()"
            );
        }
    }
}

#[test]
fn sharded_scan_equals_monolithic_for_every_version() {
    let data = planted_48();
    for version in Version::ALL {
        let mut cfg = ScanConfig::new(version);
        cfg.top_k = 8;
        let want = detect_with(&data.genotypes, &data.phenotype, &cfg);
        for s in [1u64, 7, 64] {
            let got = scan_sharded(&data.genotypes, &data.phenotype, &cfg, s);
            assert_eq!(got.combos, want.combos, "{version} S={s}");
            assert_eq!(got.top, want.top, "{version} S={s}");
        }
    }
}

#[test]
fn shard_partition_is_order_and_merge_insensitive() {
    let data = planted_48();
    let mut cfg = ScanConfig::new(Version::V2);
    cfg.top_k = 5;
    let want = detect_with(&data.genotypes, &data.phenotype, &cfg).top;

    let plan = ShardPlan::triples(48, 7);
    let shard_tops: Vec<TopK> = plan
        .ranges()
        .map(|r| scan_shard(&data.genotypes, &data.phenotype, &cfg, r))
        .collect();

    // reversed merge order
    let mut reversed = TopK::new(cfg.top_k);
    for t in shard_tops.iter().rev().cloned() {
        reversed.merge(t);
    }
    assert_eq!(reversed.into_sorted(), want);

    // pairwise tree merge
    let mut layer = shard_tops;
    while layer.len() > 1 {
        let mut next = Vec::new();
        for pair in layer.chunks(2) {
            let mut acc = pair[0].clone();
            if let Some(b) = pair.get(1) {
                acc.merge(b.clone());
            }
            next.push(acc);
        }
        layer = next;
    }
    assert_eq!(layer.pop().unwrap().into_sorted(), want);
}
