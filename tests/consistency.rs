//! Property-based cross-implementation consistency: for arbitrary valid
//! datasets, every table-construction path in the workspace produces the
//! identical contingency table, and scan results are invariant to
//! parallelism and tiling choices.

use bitgenome::layout::{RowMajorPlanes, TiledPlanes, TransposedPlanes};
use bitgenome::{GenotypeMatrix, Phenotype, SplitDataset, UnsplitDataset};
use epi_core::table27::ContingencyTable;
use epi_core::{scan::*, BlockParams};
use proptest::prelude::*;

/// Strategy: a random dataset of 6–14 SNPs and 20–200 samples with at
/// least one sample in each class.
fn dataset_strategy() -> impl Strategy<Value = (GenotypeMatrix, Phenotype)> {
    (6usize..=14, 20usize..=200).prop_flat_map(|(m, n)| {
        (
            prop::collection::vec(0u8..=2, m * n),
            prop::collection::vec(0u8..=1, n),
        )
            .prop_filter_map("need both classes", move |(geno, mut phen)| {
                // force class balance validity
                if !phen.contains(&0) {
                    phen[0] = 0;
                }
                if !phen.contains(&1) {
                    phen[n - 1] = 1;
                }
                Some((
                    GenotypeMatrix::from_raw(m, n, geno),
                    Phenotype::from_labels(phen),
                ))
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_table_path_matches_dense((g, p) in dataset_strategy()) {
        let m = g.num_snps();
        let unsplit = UnsplitDataset::encode(&g, &p);
        let split = SplitDataset::encode(&g, &p);
        let mpi = baselines::mpi3snp::Mpi3SnpDataset::encode(&g, &p);
        let tr_c = TransposedPlanes::from_class(split.controls(), m);
        let tr_k = TransposedPlanes::from_class(split.cases(), m);
        let ti_c = TiledPlanes::from_class(split.controls(), m, 4);
        let ti_k = TiledPlanes::from_class(split.cases(), m, 4);
        let row_c = RowMajorPlanes::new(split.controls(), m);
        let row_k = RowMajorPlanes::new(split.cases(), m);

        for t in [(0u32, 1, 2), (0, (m as u32) / 2, m as u32 - 1), (1, 2, 3)] {
            let want = ContingencyTable::from_dense(
                &g, &p, (t.0 as usize, t.1 as usize, t.2 as usize));
            prop_assert_eq!(&epi_core::versions::v1::table_for_triple(&unsplit, t), &want);
            prop_assert_eq!(&epi_core::versions::v2::table_for_triple(&split, t), &want);
            prop_assert_eq!(&epi_core::versions::v5::table_for_triple(&split, t), &want);
            prop_assert_eq!(&mpi.table_for_triple(t), &want);
            prop_assert_eq!(&gpu_sim::kernels::thread_v1(&unsplit, t), &want);
            prop_assert_eq!(&gpu_sim::kernels::thread_split(&row_c, &row_k, t), &want);
            prop_assert_eq!(&gpu_sim::kernels::thread_split(&tr_c, &tr_k, t), &want);
            prop_assert_eq!(&gpu_sim::kernels::thread_split(&ti_c, &ti_k, t), &want);
        }
    }

    #[test]
    fn scan_invariant_to_parallelism_and_tiling(
        (g, p) in dataset_strategy(),
        threads in 1usize..=4,
        bs in 1usize..=6,
        bp in prop::sample::select(vec![2usize, 64, 400]),
    ) {
        let mut reference_cfg = ScanConfig::new(Version::V2);
        reference_cfg.top_k = 3;
        reference_cfg.threads = 1;
        let want = scan(&g, &p, &reference_cfg).top;

        for version in [Version::V4, Version::V5] {
            let mut cfg = ScanConfig::new(version);
            cfg.top_k = 3;
            cfg.threads = threads;
            cfg.block = Some(BlockParams { bs, bp });
            let got = scan(&g, &p, &cfg).top;
            prop_assert_eq!(&got, &want, "{}", version);
        }
    }

    #[test]
    fn table_totals_partition_samples((g, p) in dataset_strategy()) {
        let split = SplitDataset::encode(&g, &p);
        let t = epi_core::versions::v2::table_for_triple(&split, (0, 1, 2));
        prop_assert_eq!(t.total(), p.len() as u64);
        prop_assert_eq!(
            t.class_totals(),
            [p.num_controls() as u64, p.num_cases() as u64]
        );
    }

    #[test]
    fn k2_score_invariant_under_sample_permutation((g, p) in dataset_strategy()) {
        // Reversing the sample order changes the bit layout completely
        // but cannot change any contingency count.
        let n = g.num_samples();
        let m = g.num_snps();
        let mut rev_geno = Vec::with_capacity(m * n);
        for snp in 0..m {
            let row = g.snp(snp);
            rev_geno.extend(row.iter().rev());
        }
        let g_rev = GenotypeMatrix::from_raw(m, n, rev_geno);
        let p_rev = Phenotype::from_labels(p.labels().iter().rev().copied().collect());

        let a = scan(&g, &p, &ScanConfig::new(Version::V4));
        let b = scan(&g_rev, &p_rev, &ScanConfig::new(Version::V4));
        let (ca, cb) = (a.best().unwrap(), b.best().unwrap());
        prop_assert_eq!(ca.triple, cb.triple);
        prop_assert!((ca.score - cb.score).abs() < 1e-9);
    }
}
