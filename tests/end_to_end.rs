//! End-to-end integration: every detector implementation in the workspace
//! (4 CPU approaches, 4 simulated GPU approaches, 2 baselines) must
//! recover planted interactions and agree on scores.

use baselines::mpi3snp::Mpi3SnpScanner;
use baselines::naive::naive_scan;
use threeway_epistasis::prelude::*;

fn planted_dataset(seed: u64) -> Dataset {
    DatasetSpec::with_planted_triple(28, 384, [3, 11, 22], seed).generate()
}

#[test]
fn all_ten_implementations_agree_on_planted_data() {
    let data = planted_dataset(101);
    let truth = data.truth.clone().unwrap();
    let mut answers: Vec<(String, Vec<Candidate>)> = Vec::new();

    for version in [Version::V1, Version::V2, Version::V3, Version::V4] {
        let mut cfg = ScanConfig::new(version);
        cfg.top_k = 5;
        let res = scan(&data.genotypes, &data.phenotype, &cfg);
        answers.push((format!("cpu-{version}"), res.top));
    }
    for version in GpuVersion::ALL {
        let mut cfg = GpuScanConfig::new(version);
        cfg.bs = 8;
        cfg.bsched = 8;
        cfg.top_k = 5;
        let res = GpuScan::prepare(&data.genotypes, &data.phenotype, &cfg).run(&cfg);
        answers.push((format!("gpu-{version}"), res.top));
    }
    answers.push((
        "mpi3snp".into(),
        Mpi3SnpScanner::new(&data.genotypes, &data.phenotype)
            .scan(5, 2)
            .top,
    ));
    answers.push((
        "naive".into(),
        naive_scan(&data.genotypes, &data.phenotype, 5, 2).top,
    ));

    let (ref_name, reference) = answers[0].clone();
    for (name, top) in &answers {
        assert_eq!(top, &reference, "{name} disagrees with {ref_name}");
        let best = top[0].triple;
        assert!(
            truth.matches(&[best.0 as usize, best.1 as usize, best.2 as usize]),
            "{name} missed the planted triple"
        );
    }
}

#[test]
fn detection_power_over_many_seeds() {
    // The planted threshold interaction should be recovered in nearly all
    // replicates at this signal strength.
    let mut hits = 0;
    let runs = 10;
    for seed in 0..runs {
        let data = planted_dataset(seed * 7 + 1);
        let truth = data.truth.clone().unwrap();
        let res = threeway_epistasis::detect(&data.genotypes, &data.phenotype);
        let best = res.best().unwrap().triple;
        if truth.matches(&[best.0 as usize, best.1 as usize, best.2 as usize]) {
            hits += 1;
        }
    }
    assert!(hits >= runs - 1, "detected {hits}/{runs}");
}

#[test]
fn io_roundtrip_preserves_detection_result() {
    let data = planted_dataset(5);
    let before = threeway_epistasis::detect(&data.genotypes, &data.phenotype);

    let mut buf = Vec::new();
    datagen::io::write_binary(&mut buf, &data.genotypes, &data.phenotype).unwrap();
    let (g2, p2) = datagen::io::read_binary(&buf[..]).unwrap();
    let after = threeway_epistasis::detect(&g2, &p2);

    assert_eq!(before.top, after.top);
}

#[test]
fn null_dataset_has_no_standout_triple() {
    // Pure-noise data: the best K2 should not be dramatically separated
    // from the runner-up (no planted structure to find).
    let data = DatasetSpec::noise(24, 512, 77).generate();
    let mut cfg = ScanConfig::new(Version::V4);
    cfg.top_k = 10;
    let res = scan(&data.genotypes, &data.phenotype, &cfg);
    let best = res.top[0].score;
    let tenth = res.top[9].score;
    let spread = (tenth - best) / best.abs().max(1.0);
    assert!(
        spread < 0.05,
        "noise data shows suspicious score separation: {spread}"
    );
}

#[test]
fn mutual_information_also_recovers_planted_triple() {
    let data = planted_dataset(31);
    let truth = data.truth.clone().unwrap();
    let mut cfg = ScanConfig::new(Version::V4);
    cfg.objective = ObjectiveKind::NegMutualInformation;
    let res = scan(&data.genotypes, &data.phenotype, &cfg);
    let best = res.best().unwrap().triple;
    assert!(truth.matches(&[best.0 as usize, best.1 as usize, best.2 as usize]));
}
