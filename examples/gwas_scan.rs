//! A GWAS-style workflow: persist a dataset to disk, reload it, then run
//! all four CPU approaches and report the optimisation ladder the paper
//! builds in §IV-A (phenotype split → cache blocking → vectorisation).
//!
//! Run with: `cargo run --release --example gwas_scan [snps] [samples]`

use std::time::Instant;
use threeway_epistasis::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let m: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(96);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(2048);

    // A harder signal: XOR-parity penetrance has (near) zero marginal
    // effects — only an exhaustive three-way test finds it.
    let mut spec = DatasetSpec::noise(m, n, 7);
    spec.maf = MafModel::Fixed(0.35);
    spec.interaction = Some((
        vec![4, m / 2, m - 3],
        PenetranceTable::xor_parity(3, 0.25, 0.75),
    ));
    let data = spec.generate();
    let truth = data.truth.clone().expect("planted");
    println!(
        "dataset: {m} SNPs x {n} samples, planted XOR-parity triple {:?}",
        truth.snps
    );

    // Round-trip through the on-disk formats (drop-in for real inputs).
    let path = std::env::temp_dir().join("gwas_scan_demo.epi3");
    let t0 = Instant::now();
    datagen::io::save_binary(&path, &data).expect("write dataset");
    let (genotypes, phenotype) = datagen::io::load(&path).expect("read dataset");
    println!(
        "dataset round-tripped through {} in {:?}\n",
        path.display(),
        t0.elapsed()
    );
    let _ = std::fs::remove_file(&path);

    println!(
        "{:<4} {:>10} {:>14} {:>10}  best triple (K2)",
        "ver", "time", "G elems/s", "speedup"
    );
    let mut v1_time = None;
    for version in [Version::V1, Version::V2, Version::V3, Version::V4] {
        let mut cfg = ScanConfig::new(version);
        cfg.top_k = 3;
        let res = scan(&genotypes, &phenotype, &cfg);
        let secs = res.elapsed.as_secs_f64();
        if version == Version::V1 {
            v1_time = Some(secs);
        }
        let speedup = v1_time.map(|t| t / secs).unwrap_or(1.0);
        let best = res.best().unwrap();
        println!(
            "{:<4} {:>9.3}s {:>14.2} {:>9.2}x  ({}, {}, {})  K2={:.2}",
            version.name(),
            secs,
            res.giga_elements_per_sec(),
            speedup,
            best.triple.0,
            best.triple.1,
            best.triple.2,
            best.score
        );
        let t = best.triple;
        assert!(
            truth.matches(&[t.0 as usize, t.1 as usize, t.2 as usize]),
            "{version} missed the planted interaction"
        );
    }
    println!("\nall four approaches recovered the planted interaction ✓");
}
