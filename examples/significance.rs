//! Permutation-based significance testing: is the best K2 score actually
//! surprising under the no-association null? Each permutation is itself a
//! full exhaustive scan — the use case where kernel speed multiplies.
//!
//! Run with: `cargo run --release --example significance`

use epi_core::permute::significance_test;
use threeway_epistasis::prelude::*;

fn main() {
    let cfg = ScanConfig::new(Version::V4);

    // 1. A dataset with a real (planted) interaction.
    let planted = DatasetSpec::with_planted_triple(40, 768, [4, 18, 31], 5).generate();
    let res = significance_test(&planted.genotypes, &planted.phenotype, &cfg, 19, 11);
    println!(
        "planted dataset: best {:?} (K2 {:.2}), p = {:.3} over 19 permutations",
        res.observed.triple, res.observed.score, res.p_value
    );
    assert!(res.p_value <= 0.05, "planted signal must be significant");

    // 2. Pure noise: the best triple exists but is not significant.
    let noise = DatasetSpec::noise(40, 768, 6).generate();
    let res = significance_test(&noise.genotypes, &noise.phenotype, &cfg, 19, 11);
    println!(
        "noise dataset:   best {:?} (K2 {:.2}), p = {:.3} over 19 permutations",
        res.observed.triple, res.observed.score, res.p_value
    );
    assert!(res.p_value > 0.05, "noise must not look significant");

    println!("\nsignificance testing distinguishes planted signal from noise ✓");
}
