//! Quickstart: generate a synthetic case-control dataset with a planted
//! three-way interaction and find it with the paper's best CPU approach.
//!
//! Run with: `cargo run --release --example quickstart`

use threeway_epistasis::prelude::*;

fn main() {
    // 64 SNPs × 1024 samples, threshold-model interaction on (5, 21, 40).
    let spec = DatasetSpec::with_planted_triple(64, 1024, [5, 21, 40], 2024);
    let data = spec.generate();
    println!(
        "dataset: {} SNPs x {} samples ({} cases / {} controls)",
        data.num_snps(),
        data.num_samples(),
        data.phenotype.num_cases(),
        data.phenotype.num_controls()
    );

    let result = threeway_epistasis::detect(&data.genotypes, &data.phenotype);

    println!(
        "scanned {} combinations ({:.2} G elements) in {:.3} s  ->  {:.2} G elements/s",
        result.combos,
        result.elements as f64 / 1e9,
        result.elapsed.as_secs_f64(),
        result.giga_elements_per_sec()
    );

    println!("\ntop 5 candidates (K2, lower = better):");
    for c in result.top.iter().take(5) {
        println!(
            "  ({:>2}, {:>2}, {:>2})  K2 = {:.3}",
            c.triple.0, c.triple.1, c.triple.2, c.score
        );
    }

    let best = result.best().expect("non-empty scan");
    let t = best.triple;
    let truth = data.truth.expect("planted interaction");
    if truth.matches(&[t.0 as usize, t.1 as usize, t.2 as usize]) {
        println!(
            "\nplanted interaction {:?} correctly recovered ✓",
            truth.snps
        );
    } else {
        println!("\nWARNING: best triple {t:?} != planted {:?}", truth.snps);
        std::process::exit(1);
    }
}
