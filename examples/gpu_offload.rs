//! Offloading the scan to the (simulated) GPU: functional execution of
//! the four GPU kernels of §IV-B, launch-geometry/occupancy accounting,
//! measured coalescing efficiency per layout, and timing predictions for
//! a paper-scale workload on every Table II device.
//!
//! Run with: `cargo run --release --example gpu_offload`

use bitgenome::layout::{RowMajorPlanes, TiledPlanes, TransposedPlanes};
use bitgenome::SplitDataset;
use devices::GpuDevice;
use gpu_sim::coalesce::coalescing_efficiency;
use gpu_sim::{GpuScan, GpuScanConfig, GpuTimingModel, GpuVersion};
use threeway_epistasis::prelude::*;

fn main() {
    let spec = DatasetSpec::with_planted_triple(48, 768, [7, 20, 33], 77);
    let data = spec.generate();
    let truth = data.truth.clone().unwrap();
    println!(
        "functional simulation: {} SNPs x {} samples, planted {:?}\n",
        data.num_snps(),
        data.num_samples(),
        truth.snps
    );

    // 1. Functional runs: all four kernels must agree and find the triple.
    for version in GpuVersion::ALL {
        let mut cfg = GpuScanConfig::new(version);
        cfg.bs = 16;
        cfg.bsched = 16;
        cfg.top_k = 3;
        let sim = GpuScan::prepare(&data.genotypes, &data.phenotype, &cfg);
        let res = sim.run(&cfg);
        let best = res.best_or_panic();
        println!(
            "GPU {}: best ({}, {}, {}) K2={:.2} | launches {} occupancy {:.1}%",
            version.name(),
            best.triple.0,
            best.triple.1,
            best.triple.2,
            best.score,
            res.launches.launches,
            res.launches.occupancy() * 100.0
        );
        let t = best.triple;
        assert!(truth.matches(&[t.0 as usize, t.1 as usize, t.2 as usize]));
    }

    // 2. Measured coalescing efficiency per layout (what V3/V4 buy).
    let split = SplitDataset::encode(&data.genotypes, &data.phenotype);
    let m = data.num_snps();
    let row = RowMajorPlanes::new(split.controls(), m);
    let tr = TransposedPlanes::from_class(split.controls(), m);
    let ti = TiledPlanes::from_class(split.controls(), m, 32);
    println!("\nmeasured coalescing efficiency (warp of 32 threads):");
    println!("  row-major (V2): {:.3}", coalescing_efficiency(&row, 32));
    println!("  transposed (V3): {:.3}", coalescing_efficiency(&tr, 32));
    println!("  tiled BS=32 (V4): {:.3}", coalescing_efficiency(&ti, 32));

    // 3. Timing predictions for a paper-scale workload (2048 x 16384).
    println!("\npredicted kernel time, 2048 SNPs x 16384 samples (V1 -> V4):");
    let model = GpuTimingModel::default();
    for d in GpuDevice::table2() {
        let times: Vec<String> = GpuVersion::ALL
            .iter()
            .map(|&v| format!("{:>8.1}s", model.predict(&d, v, 2048, 16384).seconds))
            .collect();
        println!("  {:<6} {}", d.id, times.join(" "));
    }
}

trait BestOrPanic {
    fn best_or_panic(&self) -> Candidate;
}

impl BestOrPanic for gpu_sim::GpuScanResult {
    fn best_or_panic(&self) -> Candidate {
        *self.top.first().expect("non-empty scan")
    }
}
