//! The paper's cross-device study (Figs. 3 & 4) from the analytic models:
//! per-core/per-cycle CPU throughput for the five Table I CPUs, and
//! per-CU/per-stream-core GPU throughput for the nine Table II GPUs.
//!
//! Run with: `cargo run --release --example device_study`

use carm::CpuModel;
use devices::{CpuDevice, GpuDevice};
use gpu_sim::{GpuTimingModel, GpuVersion};

fn main() {
    println!("== Table I CPUs — modelled V4 throughput (Fig. 3) ==\n");
    println!(
        "{:<6} {:<8} {:>14} {:>14} {:>16} {:>14}",
        "dev", "ISA", "Gel/s/core", "el/cyc/core", "el/cyc/lane", "Gel/s total"
    );
    for p in CpuModel::default().fig3_series() {
        println!(
            "{:<6} {:<8} {:>14.2} {:>14.2} {:>16.3} {:>14.1}",
            p.device,
            p.isa,
            p.gelems_per_sec_per_core,
            p.elems_per_cycle_per_core,
            p.elems_per_cycle_per_lane,
            p.gelems_per_sec_total
        );
    }

    println!("\n== Table II GPUs — modelled V4 throughput (Fig. 4) ==\n");
    println!(
        "{:<6} {:>12} {:>12} {:>14} {:>14} {:>12}",
        "dev", "Gel/s", "Gel/s/CU", "el/cyc/CU", "el/cyc/SC", "Gel/J"
    );
    let gpu_model = GpuTimingModel::default();
    for p in gpu_model.fig4_series(8192, 16384) {
        println!(
            "{:<6} {:>12.1} {:>12.2} {:>14.2} {:>14.3} {:>12.2}",
            p.device,
            p.gelems_per_sec,
            p.gelems_per_sec_per_cu,
            p.elems_per_cycle_per_cu,
            p.elems_per_cycle_per_sc,
            p.gelems_per_joule
        );
    }

    println!("\n== CPU vs GPU (§V-D) ==\n");
    let best_cpu = CpuModel::default()
        .fig3_series()
        .into_iter()
        .max_by(|a, b| a.gelems_per_sec_total.total_cmp(&b.gelems_per_sec_total))
        .unwrap();
    let preds = gpu_model.fig4_series(8192, 16384);
    let best_gpu = preds
        .iter()
        .max_by(|a, b| a.gelems_per_sec.total_cmp(&b.gelems_per_sec))
        .unwrap();
    let efficient = preds
        .iter()
        .max_by(|a, b| a.gelems_per_joule.total_cmp(&b.gelems_per_joule))
        .unwrap();
    println!(
        "fastest CPU : {} ({}) at {:.0} G elements/s",
        best_cpu.device, best_cpu.isa, best_cpu.gelems_per_sec_total
    );
    println!(
        "fastest GPU : {} at {:.0} G elements/s ({:.1}x the best CPU)",
        best_gpu.device,
        best_gpu.gelems_per_sec,
        best_gpu.gelems_per_sec / best_cpu.gelems_per_sec_total
    );
    println!(
        "most efficient: {} at {:.1} G elements/J (paper: Iris Xe MAX, 11.3)",
        efficient.device, efficient.gelems_per_joule
    );
    let hetero = best_cpu.gelems_per_sec_total
        + GpuTimingModel::default()
            .predict(
                &GpuDevice::by_id("GN1").unwrap(),
                GpuVersion::V4,
                8192,
                16384,
            )
            .gelems_per_sec;
    println!("CI3+GN1 heterogeneous estimate: {hetero:.0} G elements/s (paper: ~3300)");

    // sanity: catalog sizes
    assert_eq!(CpuDevice::table1().len(), 5);
    assert_eq!(GpuDevice::table2().len(), 9);
}
