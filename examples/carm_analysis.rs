//! Cache-Aware Roofline Model characterisation (Fig. 2): ASCII rooflines
//! for the Ice Lake SP CPU and the Iris Xe MAX GPU with the four approach
//! versions placed on them, plus *measured* host points for the CPU side.
//!
//! Run with: `cargo run --release --example carm_analysis`

use carm::characterize::{characterize_cpu, characterize_gpu, KernelPoint};
use carm::plot;
use carm::Roofline;
use devices::{CpuDevice, GpuDevice, HostCpu};
use threeway_epistasis::prelude::*;

fn main() {
    let ci3 = CpuDevice::by_id("CI3").unwrap();
    let gi2 = GpuDevice::by_id("GI2").unwrap();

    println!("== Fig. 2a — CARM, Intel Xeon Platinum 8360Y (Ice Lake SP) ==\n");
    let cpu_points = characterize_cpu(&ci3);
    print!(
        "{}",
        plot::render(&Roofline::for_cpu(&ci3), &cpu_points, 64, 18)
    );
    println!("\nmodelled points:");
    for p in &cpu_points {
        println!(
            "  {}: AI = {:.2} intop/B, {:.0} GINTOP/s  [{}]",
            p.version.name(),
            p.ai,
            p.gops,
            p.bound
        );
    }

    println!("\n== Fig. 2b — CARM, Intel Iris Xe MAX (Gen12) ==\n");
    let gpu_points = characterize_gpu(&gi2);
    print!(
        "{}",
        plot::render(&Roofline::for_gpu(&gi2), &gpu_points, 64, 18)
    );
    println!("\nmodelled points:");
    for p in &gpu_points {
        println!(
            "  {}: AI = {:.2} intop/B, {:.0} GINTOP/s  [{}]",
            p.version.name(),
            p.ai,
            p.gops,
            p.bound
        );
    }

    // Measured host characterisation: run each version on a small scan
    // and convert throughput to GINTOP/s with the analytic op counts.
    println!("\n== Measured host points (this machine) ==\n");
    let host = HostCpu::detect();
    println!(
        "host: {} cores, ~{:.2} GHz, best SIMD tier {}",
        host.cores, host.freq_ghz, host.simd
    );
    let data = DatasetSpec::noise(72, 2048, 3).generate();
    for version in [Version::V1, Version::V2, Version::V3, Version::V4] {
        let cfg = ScanConfig::new(version);
        let res = scan(&data.genotypes, &data.phenotype, &cfg);
        let point = KernelPoint::measured(version, res.elements_per_sec());
        println!(
            "  {}: AI = {:.2} intop/B, measured {:.1} GINTOP/s  ({:.2} G elements/s)",
            version.name(),
            point.ai,
            point.gops,
            res.giga_elements_per_sec()
        );
    }
}
