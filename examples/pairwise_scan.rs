//! Pairwise (second-order) epistasis detection — the interaction order
//! most prior tools target (GBOOST, epiSNP), generalised down from the
//! three-way machinery. Plants a two-SNP interaction and recovers it.
//!
//! Run with: `cargo run --release --example pairwise_scan`

use epi_core::pairs::scan_pairs;
use threeway_epistasis::prelude::*;

fn main() {
    // Plant a pairwise threshold interaction on SNPs (9, 33).
    let mut spec = DatasetSpec::noise(80, 2048, 12);
    spec.maf = MafModel::Fixed(0.3);
    spec.interaction = Some((vec![9, 33], PenetranceTable::threshold(2, 0.2, 0.8, 2)));
    let data = spec.generate();
    println!(
        "dataset: {} SNPs x {} samples, planted pair (9, 33)",
        data.num_snps(),
        data.num_samples()
    );

    let res = scan_pairs(&data.genotypes, &data.phenotype, 5, 0);
    println!(
        "\nscanned {} pairs in {:.3} s; top 5 (K2, lower = better):",
        res.combos,
        res.elapsed.as_secs_f64()
    );
    for c in &res.top {
        println!("  ({:>2}, {:>2})  K2 = {:.3}", c.pair.0, c.pair.1, c.score);
    }

    let best = res.top[0].pair;
    assert_eq!(
        (best.0 as usize, best.1 as usize),
        (9, 33),
        "pairwise scan missed the planted pair"
    );
    println!("\nplanted pair correctly recovered ✓");

    // Order-3 scan over the same data: the planted *pair* should surface
    // inside the best triples too (any third SNP rides along).
    let res3 = threeway_epistasis::detect(&data.genotypes, &data.phenotype);
    let t = res3.best().unwrap().triple;
    let members = [t.0 as usize, t.1 as usize, t.2 as usize];
    assert!(
        members.contains(&9) && members.contains(&33),
        "three-way scan should contain the planted pair, got {members:?}"
    );
    println!("three-way scan's best triple {members:?} contains the planted pair ✓");
}
