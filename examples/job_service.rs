//! Walkthrough of the scan-job service: start a server on a loopback
//! port, submit a sharded job, poll its progress, fetch the result, and
//! demonstrate cancel + resume from the checkpoint.
//!
//! ```console
//! $ cargo run --release --example job_service
//! ```

use std::time::Duration;
use threeway_epistasis::prelude::*;

fn main() {
    // A dataset with a planted three-way interaction, saved where the
    // server can load it.
    let dir = std::env::temp_dir();
    let path = dir.join("job_service_demo.epi3");
    let data = DatasetSpec::with_planted_triple(48, 1024, [5, 21, 40], 4242).generate();
    datagen::io::save_binary(&path, &data).unwrap();
    println!("dataset: 48 SNPs x 1024 samples, planted triple (5, 21, 40)");

    // In-process server on an ephemeral port. `epi3 serve` runs exactly
    // this; the example keeps everything in one binary.
    let server = Server::bind("127.0.0.1:0", EngineConfig::default()).unwrap();
    let addr = server.local_addr();
    let handle = server.spawn();
    println!("server listening on {addr}");

    let mut client = Client::connect(addr).unwrap();

    // --- submit, poll, fetch -------------------------------------------
    let mut spec = JobSpec::new(path.to_str().unwrap());
    spec.shards = 64;
    spec.top_k = 5;
    let job = client.submit(&spec).unwrap();
    println!("submitted job {} ({} shards)", job.id, job.total);

    let done = client.wait(job.id, Duration::from_secs(300)).unwrap();
    println!(
        "finished: state={} after {}/{} shards",
        done.state, done.done, done.total
    );

    let top = client.result(job.id).unwrap();
    println!("top candidates:");
    for c in &top {
        println!(
            "  ({}, {}, {})  K2 = {:.4}",
            c.triple.0, c.triple.1, c.triple.2, c.score
        );
    }

    // The sharded service reproduces the library's monolithic scan
    // bit-identically.
    let mut cfg = ScanConfig::new(Version::V4);
    cfg.top_k = 5;
    let mono = detect_with(&data.genotypes, &data.phenotype, &cfg);
    assert_eq!(top, mono.top, "sharded job == monolithic detect_with");
    println!("verified: identical to the monolithic scan");
    let best = top[0].triple;
    assert!(data.truth.as_ref().unwrap().matches(&[
        best.0 as usize,
        best.1 as usize,
        best.2 as usize
    ]));
    println!("planted interaction recovered");

    // --- cancel + resume ------------------------------------------------
    // A throttled job gives us a window to cancel mid-scan.
    let mut slow = JobSpec::new(path.to_str().unwrap());
    slow.shards = 32;
    slow.top_k = 5;
    slow.throttle_ms = 30;
    let job2 = client.submit(&slow).unwrap();
    while client.status(job2.id).unwrap().done < 4 {
        std::thread::sleep(Duration::from_millis(10));
    }
    let cancelled = client.cancel(job2.id).unwrap();
    let stable = client.wait(job2.id, Duration::from_secs(60)).unwrap();
    println!(
        "job {} cancelled at {}/{} shards (request saw {})",
        job2.id, stable.done, stable.total, cancelled.done
    );

    let resumed = client.resume(job2.id).unwrap();
    println!(
        "resumed: state={}, {} shards already done",
        resumed.state, resumed.done
    );
    let done2 = client.wait(job2.id, Duration::from_secs(300)).unwrap();
    println!(
        "completed after resume: {}/{} shards",
        done2.done, done2.total
    );
    assert_eq!(
        client.result(job2.id).unwrap(),
        top,
        "resume converges to the same result"
    );
    println!("resumed job matches the uncancelled one");

    handle.shutdown();
    let _ = std::fs::remove_file(&path);
}
