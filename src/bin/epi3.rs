//! `epi3` — command-line interface to the three-way epistasis toolkit.
//!
//! ```console
//! $ epi3 gen --snps 64 --samples 1024 --plant 5,21,40 --out data.epi3
//! $ epi3 scan data.epi3 --version v4 --top 5
//! $ epi3 shards data.epi3 --shards 64 --verify
//! $ epi3 pairs data.epi3 --top 5
//! $ epi3 significance data.epi3 --permutations 19
//! $ epi3 summary data.epi3
//! $ epi3 devices
//! $ epi3 serve --addr 127.0.0.1:7733 --spool /var/spool/epi3 &
//! $ epi3 submit data.epi3 --shards 64 --wait
//! $ epi3 status --all
//! $ epi3 federate data.epi3 --spawn 2 --shards 64 --verify
//! $ epi3 lint
//! ```

use std::process::ExitCode;
use std::time::Duration;
use threeway_epistasis::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage: epi3 <command> [options]

commands:
  gen           generate a synthetic dataset
                  --snps N --samples N [--seed N] [--plant i,j,k]
                  [--balance] --out FILE [--text]
  scan FILE     exhaustive three-way scan
                  [--version v1|v2|v3|v4|v5] [--top K] [--threads N] [--mi]
                  [--simd TIER]
  shards FILE   sharded three-way scan (the job service's work unit)
                  [--shards S] [--version vN] [--top K] [--threads N]
                  [--simd TIER]
                  [--verify]  (also run monolithically and compare)
  pairs FILE    exhaustive two-way scan [--top K] [--threads N]
  significance FILE   permutation test [--permutations P] [--seed N]
  summary FILE  dataset quality-control summary
  bench         kernel-version throughput on a fixed synthetic dataset,
                the cross-triple pair-cache hit rate over a rank-order
                shard plan, the detected L2/L3-derived cross-pair cache
                budget, a per-tier deep-prefix fill microbenchmark, a
                parallel scaling sweep (chunk-1 vs run-aware scheduler
                at each worker count, with pool-wide cache hit rates),
                a federation block (1/2/4-node loopback fleets plus
                a forced-straggler steal-latency measurement), and a
                federation-recovery block (node re-admission latency,
                crash-resume vs fresh wall-clock, hash-verify overhead)
                  [--snps N] [--samples N] [--seed N] [--trials T]
                  [--versions v2,v4,v5] [--threads N] [--shards S]
                  [--scale-threads a,b,c] [--scale-samples N]
                  [--simd TIER] [--out FILE]
  devices       print the paper's device catalogs (Tables I & II)
  lint          in-tree static analysis: determinism, unsafe/SIMD
                hygiene, lock discipline, wire-protocol conformance,
                panic-path audit (see README \"Static analysis\")
                  [--root DIR] [--allowlist FILE] [--check NAME]...
                  [--json] [--list]  (exit 1 on non-allowlisted findings)

job service (line-delimited TCP, see epi_server crate docs):
  serve         run the scan-job server (blocks until SHUTDOWN)
                  [--addr HOST:PORT] [--workers N] [--spool DIR]
                  [--simd TIER]  (default tier for jobs without simd=)
                  [--data-root DIR]  (resolve spec paths as file names
                  under DIR — the node-local dataset replica directory)
                  [--mem-budget BYTES]  (admission control: refuse
                  SUBMITs that would push resident job data past this;
                  0 = unlimited)
                  [--max-tenant-jobs N] [--max-tenant-queue N]
                  (per-tenant quotas on concurrent jobs / queued shards)
  submit FILE   submit a scan job to a server
                  [--addr HOST:PORT] [--version vN] [--shards S]
                  [--top K] [--mi] [--throttle-ms N] [--wait]
                  [--simd TIER]  (sent as the simd= spec key; the server
                  clamps it to its own capability and echoes it in STATUS)
                  [--tenant NAME] [--priority 0-9]  (quota accounting and
                  weighted-fair dispatch; higher priority = bigger share)
                  [--deadline-ms N]  (job fails once N ms elapse)
                  [--job-token TOK]  (idempotency key: lets the client
                  retry an over-capacity SUBMIT without duplicating work)
  status [JOB]  poll one job, or all jobs with --all
                  [--addr HOST:PORT]
  result JOB    fetch the merged top-K of a finished job [--addr]
  cancel JOB    cancel a job, keeping its checkpoint [--addr]
  resume JOB    resume a cancelled job from its checkpoint [--addr]

All job-service client commands accept [--framed]: talk to the server
over length-prefixed, checksummed binary frames instead of plain text
(same verbs, bit-identical replies; see README \"Wire protocol\").
  federate FILE split one sharded scan across a fleet of epi-servers,
                merging the per-shard top-Ks bit-identically and
                stealing work from slow or dead nodes
                  --nodes HOST:PORT,...  (the fleet)
                  --spawn N   (instead of --nodes: launch N in-process
                  loopback servers on ephemeral ports [--workers N each])
                  [--shards S] [--version vN] [--top K] [--mi]
                  [--throttle-ms N] [--simd TIER]
                  [--verify]  (also scan monolithically and compare)
                  [--spool FILE]  (checkpoint the coordinator after every
                  merge batch so a killed run can be continued)
                  [--resume FILE]  (continue from a spooled checkpoint;
                  the dataset argument is then only needed with --verify)
                  [--fail-after-merges N]  (fault injection, tests only:
                  abort once N shards merged, as a stand-in for kill -9)

TIER = scalar|avx2|avx512|vpopcnt. Every command that scans accepts
--simd; when the flag is absent the EPI3_SIMD env var applies instead.
Tiers above the host's capability are clamped with a warning (scan,
shards, bench, serve clamp locally; submit lets the server clamp).

Thread counts: scan/shards/pairs --threads and serve --workers default
to 0 (= all cores); when the flag is absent the EPI3_THREADS env var
applies instead. Requests beyond the host's parallelism are clamped.

default server address: 127.0.0.1:7733";

const DEFAULT_ADDR: &str = "127.0.0.1:7733";

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().ok_or("no command given")?;
    let rest = &args[1..];
    match cmd.as_str() {
        "gen" => cmd_gen(rest),
        "scan" => cmd_scan(rest),
        "shards" => cmd_shards(rest),
        "pairs" => cmd_pairs(rest),
        "significance" => cmd_significance(rest),
        "summary" => cmd_summary(rest),
        "bench" => cmd_bench(rest),
        "devices" => cmd_devices(),
        "serve" => cmd_serve(rest),
        "submit" => cmd_submit(rest),
        "status" => cmd_status(rest),
        "result" => cmd_result(rest),
        "cancel" => cmd_job_verb(rest, JobVerb::Cancel),
        "resume" => cmd_job_verb(rest, JobVerb::Resume),
        "federate" => cmd_federate(rest),
        "lint" => cmd_lint(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    }
}

// --- tiny argument helpers -------------------------------------------------

fn opt_value<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn opt_usize(args: &[String], key: &str, default: usize) -> Result<usize, String> {
    match opt_value(args, key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("{key} expects a number, got {v:?}")),
    }
}

fn opt_flag(args: &[String], key: &str) -> bool {
    args.iter().any(|a| a == key)
}

// --- lint ------------------------------------------------------------------

fn cmd_lint(args: &[String]) -> Result<(), String> {
    if opt_flag(args, "--list") {
        print!("{}", epi_lint::list_checks());
        return Ok(());
    }
    let root = std::path::PathBuf::from(opt_value(args, "--root").unwrap_or("."));
    let allow = match opt_value(args, "--allowlist") {
        Some(p) => std::path::PathBuf::from(p),
        None => root.join("epi-lint.allow"),
    };
    let mut only = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--check" {
            let name = args
                .get(i + 1)
                .ok_or("--check expects a name (see --list)")?;
            if !epi_lint::checks::CHECKS.iter().any(|(n, _, _)| n == name) {
                return Err(format!("unknown check {name:?}; --list shows the registry"));
            }
            only.push(name.clone());
            i += 1;
        }
        i += 1;
    }
    let report = epi_lint::run_lint(&root, &allow, &only)?;
    if opt_flag(args, "--json") {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.to_text());
    }
    if report.findings.is_empty() {
        Ok(())
    } else {
        // findings already printed; skip the usage blurb an Err would add
        std::process::exit(1);
    }
}

/// Worker/thread count for commands that scan: the explicit flag wins,
/// then the `EPI3_THREADS` env var, then `default` (`0` = all cores —
/// the uniform default of scan/shards/pairs/serve; requests beyond the
/// host's parallelism are clamped downstream by
/// `epi_core::pool::resolve_threads`).
fn opt_threads(args: &[String], key: &str, default: usize) -> Result<usize, String> {
    let env = std::env::var("EPI3_THREADS").ok();
    opt_threads_with(args, key, default, env.as_deref())
}

/// [`opt_threads`] over an injected env value (unit-testable without
/// mutating process-global state under a parallel test runner).
fn opt_threads_with(
    args: &[String],
    key: &str,
    default: usize,
    env: Option<&str>,
) -> Result<usize, String> {
    if let Some(v) = opt_value(args, key) {
        return v
            .parse()
            .map_err(|_| format!("{key} expects a number, got {v:?}"));
    }
    match env {
        Some(v) if !v.is_empty() => v
            .parse()
            .map_err(|_| format!("EPI3_THREADS expects a number, got {v:?}")),
        _ => Ok(default),
    }
}

fn positional(args: &[String]) -> Option<&str> {
    args.iter()
        .take_while(|a| !a.starts_with("--"))
        .map(String::as_str)
        .next()
}

fn load_dataset(args: &[String]) -> Result<(GenotypeMatrix, Phenotype), String> {
    let path = positional(args).ok_or("expected a dataset file argument")?;
    datagen::io::load(path).map_err(|e| format!("cannot read {path}: {e}"))
}

// --- commands ----------------------------------------------------------------

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let snps = opt_usize(args, "--snps", 64)?;
    let samples = opt_usize(args, "--samples", 1024)?;
    let seed = opt_usize(args, "--seed", 42)? as u64;
    let out = opt_value(args, "--out").ok_or("--out FILE is required")?;

    let mut spec = DatasetSpec::noise(snps, samples, seed);
    spec.balance = opt_flag(args, "--balance");
    if let Some(plant) = opt_value(args, "--plant") {
        let parts: Result<Vec<usize>, _> = plant.split(',').map(str::parse).collect();
        let parts = parts.map_err(|_| format!("--plant expects i,j,k, got {plant:?}"))?;
        if parts.len() != 3 {
            return Err("--plant expects exactly three SNP indices".into());
        }
        spec.maf = MafModel::Uniform { lo: 0.2, hi: 0.4 };
        spec.interaction = Some((parts, PenetranceTable::threshold(3, 0.15, 0.85, 3)));
    }
    spec.validate()?;
    let data = spec.generate();
    let write = if opt_flag(args, "--text") {
        datagen::io::save_text(out, &data)
    } else {
        datagen::io::save_binary(out, &data)
    };
    write.map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "wrote {out}: {snps} SNPs x {samples} samples ({} cases / {} controls)",
        data.phenotype.num_cases(),
        data.phenotype.num_controls()
    );
    if let Some(t) = &data.truth {
        println!("planted interaction: {:?}", t.snps);
    }
    Ok(())
}

fn cmd_scan(args: &[String]) -> Result<(), String> {
    let (g, p) = load_dataset(args)?;
    let version = parse_version(args)?;
    let mut cfg = ScanConfig::new(version);
    cfg.top_k = opt_usize(args, "--top", 5)?;
    cfg.threads = opt_threads(args, "--threads", 0)?;
    cfg.simd = forced_simd(args)?;
    if opt_flag(args, "--mi") {
        cfg.objective = ObjectiveKind::NegMutualInformation;
    }
    if let Some(want) = cfg.simd {
        // V1-V3 run scalar kernels by definition; say so instead of
        // pretending the forced tier applied
        let eff = cfg.effective_simd();
        if eff != want {
            eprintln!(
                "note: {} runs the scalar kernel; forced SIMD tier {want} does not apply",
                version.name()
            );
        }
    }
    let res = scan(&g, &p, &cfg);
    println!(
        "{} combinations ({:.3} G elements) in {:.3} s -> {:.2} G elements/s [{}{}]",
        res.combos,
        res.elements as f64 / 1e9,
        res.elapsed.as_secs_f64(),
        res.giga_elements_per_sec(),
        version.name(),
        match cfg.simd {
            // report the tier that actually ran (scalar for V1-V3)
            Some(_) => format!(", SIMD {} forced", cfg.effective_simd()),
            None => String::new(),
        },
    );
    for c in &res.top {
        println!(
            "  ({}, {}, {})  score = {:.4}",
            c.triple.0, c.triple.1, c.triple.2, c.score
        );
    }
    Ok(())
}

fn parse_version(args: &[String]) -> Result<Version, String> {
    parse_version_name(opt_value(args, "--version").unwrap_or("v5"))
}

fn parse_version_name(name: &str) -> Result<Version, String> {
    match name {
        "v1" | "V1" => Ok(Version::V1),
        "v2" | "V2" => Ok(Version::V2),
        "v3" | "V3" => Ok(Version::V3),
        "v4" | "V4" => Ok(Version::V4),
        "v5" | "V5" => Ok(Version::V5),
        other => Err(format!("unknown version {other:?}")),
    }
}

fn cmd_shards(args: &[String]) -> Result<(), String> {
    let (g, p) = load_dataset(args)?;
    let shards = opt_usize(args, "--shards", 64)? as u64;
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    let mut cfg = ScanConfig::new(parse_version(args)?);
    cfg.top_k = opt_usize(args, "--top", 5)?;
    cfg.threads = opt_threads(args, "--threads", 0)?;
    cfg.simd = forced_simd(args)?;
    let plan = ShardPlan::triples(g.num_snps(), shards);
    let res = scan_sharded(&g, &p, &cfg, shards);
    println!(
        "{} combinations over {} shards (~{} each) in {:.3} s -> {:.2} G elements/s [{}]",
        res.combos,
        plan.num_shards(),
        plan.total_combos().div_ceil(plan.num_shards().max(1)),
        res.elapsed.as_secs_f64(),
        res.giga_elements_per_sec(),
        cfg.version.name(),
    );
    for c in &res.top {
        println!(
            "  ({}, {}, {})  score = {:.4}",
            c.triple.0, c.triple.1, c.triple.2, c.score
        );
    }
    if opt_flag(args, "--verify") {
        let mono = scan(&g, &p, &cfg);
        if mono.top == res.top {
            println!(
                "verify: sharded == monolithic ({} candidates bit-identical; monolithic {:.3} s)",
                mono.top.len(),
                mono.elapsed.as_secs_f64()
            );
        } else {
            return Err("verify FAILED: sharded result differs from monolithic scan".into());
        }
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let addr = opt_value(args, "--addr").unwrap_or(DEFAULT_ADDR);
    let cfg = EngineConfig {
        // same 0 = all-cores default and EPI3_THREADS override as the
        // local scan commands; the effective pool size is echoed in STATS
        workers: opt_threads(args, "--workers", 0)?,
        spool_dir: opt_value(args, "--spool").map(Into::into),
        // server-wide default tier for jobs without a simd= key
        // (clamped again inside the engine)
        default_simd: forced_simd(args)?,
        // node-local dataset directory: spec paths resolve as file
        // names under it, the fleet shape dataset_hash= verifies
        dataset_root: opt_value(args, "--data-root").map(Into::into),
        // resource governance: 0 = unlimited, matching the STATS
        // mem_budget=0 convention
        mem_budget: nonzero_u64(opt_usize(args, "--mem-budget", 0)? as u64),
        max_jobs_per_tenant: nonzero_u64(opt_usize(args, "--max-tenant-jobs", 0)? as u64),
        max_queued_per_tenant: nonzero_u64(opt_usize(args, "--max-tenant-queue", 0)? as u64),
        ..EngineConfig::default()
    };
    let server = Server::bind(addr, cfg).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    println!("epi3 job server listening on {}", server.local_addr());
    server.run();
    println!("epi3 job server stopped");
    Ok(())
}

fn nonzero_u64(v: u64) -> Option<u64> {
    (v > 0).then_some(v)
}

fn connect(args: &[String]) -> Result<Client, String> {
    let addr = opt_value(args, "--addr").unwrap_or(DEFAULT_ADDR);
    if opt_flag(args, "--framed") {
        Client::connect_framed(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))
    } else {
        Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))
    }
}

fn print_status(s: &threeway_epistasis::epi_server::JobStatus) {
    let simd = s
        .simd
        .map(|level| format!(", SIMD {level}"))
        .unwrap_or_default();
    let extra = s
        .error
        .as_deref()
        .map(|e| format!("  error: {e}"))
        .unwrap_or_default();
    println!(
        "job {}: {}  [{} / {} shards done, {} in flight, {} combinations{simd}]{extra}",
        s.id, s.state, s.done, s.total, s.in_flight, s.combos
    );
}

fn print_candidates(cands: &[Candidate]) {
    for c in cands {
        println!(
            "  ({}, {}, {})  score = {:.4}",
            c.triple.0, c.triple.1, c.triple.2, c.score
        );
    }
}

fn cmd_submit(args: &[String]) -> Result<(), String> {
    let path = positional(args).ok_or("expected a dataset file argument")?;
    // The server loads the dataset itself; resolve to an absolute path so
    // client and server working directories need not match.
    let path = std::fs::canonicalize(path)
        .map_err(|e| format!("cannot resolve {path}: {e}"))?
        .to_string_lossy()
        .into_owned();
    let mut spec = JobSpec::new(path);
    spec.version = parse_version(args)?;
    spec.shards = opt_usize(args, "--shards", 64)? as u64;
    spec.top_k = opt_usize(args, "--top", 10)?;
    spec.throttle_ms = opt_usize(args, "--throttle-ms", 0)? as u64;
    // unclamped: the server clamps to its own capability and echoes the
    // effective tier back in the STATUS reply
    spec.simd = requested_simd(args)?;
    if opt_flag(args, "--mi") {
        spec.objective = ObjectiveKind::NegMutualInformation;
    }
    // resource-governance keys (validated server-side at admission)
    if let Some(t) = opt_value(args, "--tenant") {
        spec.tenant = Some(t.to_string());
    }
    if let Some(p) = opt_value(args, "--priority") {
        spec.priority = p.parse().map_err(|_| "priority must be 0-9")?;
    }
    if let Some(ms) = opt_value(args, "--deadline-ms") {
        spec.deadline_ms = Some(ms.parse().map_err(|_| "deadline-ms must be a number")?);
    }
    if let Some(tok) = opt_value(args, "--job-token") {
        spec.job_token = Some(tok.to_string());
    }
    let mut client = connect(args)?;
    let st = client.submit(&spec)?;
    print_status(&st);
    if opt_flag(args, "--wait") {
        let done = client.wait(st.id, Duration::from_secs(24 * 3600))?;
        print_status(&done);
        if done.state == JobState::Done {
            print_candidates(&client.result(done.id)?);
        }
    }
    Ok(())
}

fn cmd_status(args: &[String]) -> Result<(), String> {
    let mut client = connect(args)?;
    if opt_flag(args, "--all") {
        for s in client.jobs()? {
            print_status(&s);
        }
        return Ok(());
    }
    let id: u64 = positional(args)
        .ok_or("expected a job id (or --all)")?
        .parse()
        .map_err(|_| "job id must be a number")?;
    print_status(&client.status(id)?);
    Ok(())
}

fn cmd_result(args: &[String]) -> Result<(), String> {
    let id: u64 = positional(args)
        .ok_or("expected a job id")?
        .parse()
        .map_err(|_| "job id must be a number")?;
    let mut client = connect(args)?;
    let cands = client.result(id)?;
    println!("job {id}: {} candidates", cands.len());
    print_candidates(&cands);
    Ok(())
}

enum JobVerb {
    Cancel,
    Resume,
}

fn cmd_job_verb(args: &[String], verb: JobVerb) -> Result<(), String> {
    let id: u64 = positional(args)
        .ok_or("expected a job id")?
        .parse()
        .map_err(|_| "job id must be a number")?;
    let mut client = connect(args)?;
    let st = match verb {
        JobVerb::Cancel => client.cancel(id)?,
        JobVerb::Resume => client.resume(id)?,
    };
    print_status(&st);
    Ok(())
}

/// Launch `n` in-process loopback servers on ephemeral ports; returns
/// their addresses and the handles to shut them down with.
fn spawn_loopback_fleet(
    n: usize,
    workers: usize,
    default_simd: Option<bitgenome::SimdLevel>,
) -> Result<
    (
        Vec<String>,
        Vec<threeway_epistasis::epi_server::ServerHandle>,
    ),
    String,
> {
    let mut addrs = Vec::new();
    let mut handles = Vec::new();
    for _ in 0..n {
        let server = Server::bind(
            "127.0.0.1:0",
            EngineConfig {
                workers,
                spool_dir: None,
                default_simd,
                dataset_root: None,
                ..EngineConfig::default()
            },
        )
        .map_err(|e| format!("cannot bind a loopback server: {e}"))?;
        addrs.push(server.local_addr().to_string());
        handles.push(server.spawn());
    }
    Ok((addrs, handles))
}

fn print_federation_report(r: &FederationReport) {
    println!(
        "federated {} shards over {} node(s) in {:.3} s",
        r.num_shards,
        r.per_node_shards.len(),
        r.elapsed.as_secs_f64()
    );
    if r.resumed_merged > 0 {
        println!(
            "  resumed: {} shard(s) adopted from the checkpoint, not rescanned",
            r.resumed_merged
        );
    }
    for (addr, n) in &r.per_node_shards {
        let mark = if r.quarantined.iter().any(|(a, _)| a == addr) {
            "  [QUARANTINED]"
        } else if r.dead_nodes.contains(addr) {
            "  [DEAD]"
        } else {
            ""
        };
        println!("  {addr}: {n} shard(s){mark}");
    }
    for e in &r.readmissions {
        println!(
            "  readmitted {} after {:.1} ms down at +{:.2} s",
            e.node,
            e.downtime.as_secs_f64() * 1e3,
            e.at.as_secs_f64(),
        );
    }
    for (addr, why) in &r.quarantined {
        println!("  quarantined {addr}: {why}");
    }
    for s in &r.steals {
        println!(
            "  steal [{:?}] {} -> {}: {} shard(s), latency {:.1} ms at +{:.2} s",
            s.reason,
            s.from,
            s.to,
            s.shards.len(),
            s.latency.as_secs_f64() * 1e3,
            s.at.as_secs_f64(),
        );
    }
    print_candidates(&r.top);
}

fn cmd_federate(args: &[String]) -> Result<(), String> {
    let resume = opt_value(args, "--resume");
    // Every fleet member loads the dataset itself (shared storage or
    // per-node replicas); resolve to an absolute path like `submit`
    // does. On --resume the spec (path included) comes from the
    // checkpoint, so the dataset argument is only needed for --verify.
    let canonical = |p: &str| -> Result<String, String> {
        Ok(std::fs::canonicalize(p)
            .map_err(|e| format!("cannot resolve {p}: {e}"))?
            .to_string_lossy()
            .into_owned())
    };
    let dataset = positional(args);
    let version = parse_version(args)?;
    let top_k = opt_usize(args, "--top", 10)?;
    let mi = opt_flag(args, "--mi");

    let spawn = opt_usize(args, "--spawn", 0)?;
    let nodes_arg = opt_value(args, "--nodes");
    if spawn > 0 && nodes_arg.is_some() {
        return Err("--nodes and --spawn are mutually exclusive".into());
    }
    let mut handles = Vec::new();
    let nodes: Vec<String> = if spawn > 0 {
        let workers = opt_threads(args, "--workers", 0)?;
        let (addrs, hs) = spawn_loopback_fleet(spawn, workers, forced_simd(args)?)?;
        handles = hs;
        println!("spawned {spawn} in-process server(s): {}", addrs.join(", "));
        addrs
    } else {
        nodes_arg
            .ok_or("--nodes HOST:PORT,... or --spawn N is required")?
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(Into::into)
            .collect()
    };

    let mut cfg = FederationConfig::new(nodes);
    cfg.spool_path = opt_value(args, "--spool").map(Into::into);
    if let Some(v) = opt_value(args, "--fail-after-merges") {
        cfg.fail_after_merges = Some(
            v.parse()
                .map_err(|_| format!("--fail-after-merges expects a number, got {v:?}"))?,
        );
    }
    let outcome = match resume {
        Some(spool) => resume_from_spool(std::path::Path::new(spool), &cfg),
        None => {
            let path = canonical(dataset.ok_or("expected a dataset file argument")?)?;
            let mut spec = JobSpec::new(&path);
            spec.version = version;
            spec.shards = opt_usize(args, "--shards", 64)? as u64;
            spec.top_k = top_k;
            spec.throttle_ms = opt_usize(args, "--throttle-ms", 0)? as u64;
            // unclamped, like submit: each server clamps to its own
            // capability
            spec.simd = requested_simd(args)?;
            if mi {
                spec.objective = ObjectiveKind::NegMutualInformation;
            }
            federate(&spec, &cfg)
        }
    };
    // spawned servers must come down even when the federation failed
    for h in handles {
        h.shutdown();
    }
    let report = outcome?;
    print_federation_report(&report);

    if opt_flag(args, "--verify") {
        let path = canonical(
            dataset.ok_or("--verify needs the dataset file argument (also with --resume)")?,
        )?;
        let (g, p) = datagen::io::load(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let mut cfg = ScanConfig::new(version);
        cfg.top_k = top_k;
        if mi {
            cfg.objective = ObjectiveKind::NegMutualInformation;
        }
        cfg.simd = forced_simd(args)?;
        let mono = scan(&g, &p, &cfg);
        if mono.top == report.top {
            println!(
                "verify: federated == monolithic ({} candidates bit-identical; monolithic {:.3} s)",
                mono.top.len(),
                mono.elapsed.as_secs_f64()
            );
        } else {
            return Err("verify FAILED: federated result differs from monolithic scan".into());
        }
    }
    Ok(())
}

fn cmd_pairs(args: &[String]) -> Result<(), String> {
    let (g, p) = load_dataset(args)?;
    let top_k = opt_usize(args, "--top", 5)?;
    let threads = opt_threads(args, "--threads", 0)?;
    let res = epi_core::pairs::scan_pairs(&g, &p, top_k, threads);
    println!("{} pairs in {:.3} s", res.combos, res.elapsed.as_secs_f64());
    for c in &res.top {
        println!("  ({}, {})  K2 = {:.4}", c.pair.0, c.pair.1, c.score);
    }
    Ok(())
}

fn cmd_significance(args: &[String]) -> Result<(), String> {
    let (g, p) = load_dataset(args)?;
    let perms = opt_usize(args, "--permutations", 19)?;
    let seed = opt_usize(args, "--seed", 7)? as u64;
    let cfg = ScanConfig::new(Version::V4);
    let res = epi_core::permute::significance_test(&g, &p, &cfg, perms, seed);
    println!(
        "observed best: {:?} (K2 {:.4})",
        res.observed.triple, res.observed.score
    );
    let best_null = res
        .null_scores
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    println!("best null score over {perms} permutations: {best_null:.4}");
    println!("permutation p-value: {:.4}", res.p_value);
    Ok(())
}

fn cmd_summary(args: &[String]) -> Result<(), String> {
    let (g, p) = load_dataset(args)?;
    let s = datagen::stats::dataset_summary(&g, &p);
    println!("SNPs: {}", s.snps);
    println!(
        "samples: {} ({:.1}% cases)",
        s.samples,
        s.case_fraction * 100.0
    );
    println!("mean MAF: {:.3}", s.mean_maf);
    println!("HWE failures (chi2 > 3.84): {}", s.hwe_failures);
    Ok(())
}

/// Parse a SIMD tier name (`--simd` flag / `EPI3_SIMD` env values).
fn parse_simd_name(name: &str) -> Result<bitgenome::SimdLevel, String> {
    bitgenome::SimdLevel::parse_token(name)
}

/// Requested SIMD tier, unclamped: `--simd NAME` wins over the
/// `EPI3_SIMD` env var. `submit` forwards this verbatim — the *server*
/// clamps to its own capability, which may differ from the client's.
fn requested_simd(args: &[String]) -> Result<Option<bitgenome::SimdLevel>, String> {
    let name = match opt_value(args, "--simd").map(str::to_string) {
        Some(n) => Some(n),
        None => std::env::var("EPI3_SIMD").ok().filter(|s| !s.is_empty()),
    };
    name.as_deref().map(parse_simd_name).transpose()
}

/// Forced SIMD tier for commands that scan locally: a tier above the
/// host's capability is clamped (with a warning) so CI can request e.g.
/// `avx2` on any runner and still exercise a real fallback path instead
/// of crashing.
fn forced_simd(args: &[String]) -> Result<Option<bitgenome::SimdLevel>, String> {
    let Some(want) = requested_simd(args)? else {
        return Ok(None);
    };
    let best = bitgenome::SimdLevel::detect();
    if want > best {
        eprintln!("warning: SIMD tier {want} not available on this host; clamping to {best}");
        return Ok(Some(best));
    }
    Ok(Some(want))
}

/// Fixed-workload kernel benchmark: runs the requested versions on one
/// synthetic dataset (single-threaded by default, isolating kernel
/// quality), measures the cross-triple pair-cache hit rate on a
/// rank-order sharded V5 scan (the epi-server work unit), and writes a
/// small JSON report so successive PRs can track the throughput
/// trajectory (`BENCH_PR2.json`, `BENCH_PR3.json`, et seq.).
fn cmd_bench(args: &[String]) -> Result<(), String> {
    let snps = opt_usize(args, "--snps", 64)?;
    let samples = opt_usize(args, "--samples", 2048)?;
    let seed = opt_usize(args, "--seed", 9)? as u64;
    let trials = opt_usize(args, "--trials", 5)?.max(1);
    // The kernel table stays single-threaded unless --threads says
    // otherwise (isolating kernel quality); the scaling sweep below
    // covers the parallel dimension. Deliberately NOT EPI3_THREADS-
    // sensitive: an env var exported for serving must not silently turn
    // the version-to-version comparison into a scheduler benchmark.
    let threads = opt_usize(args, "--threads", 1)?;
    let shards = opt_usize(args, "--shards", 64)?.max(1) as u64;
    let out = opt_value(args, "--out").unwrap_or("BENCH_PR7.json");
    let forced = forced_simd(args)?;
    let versions: Vec<Version> = match opt_value(args, "--versions") {
        None => vec![Version::V2, Version::V4, Version::V5],
        Some(list) => list
            .split(',')
            .map(parse_version_name)
            .collect::<Result<_, _>>()?,
    };

    let data = DatasetSpec::noise(snps, samples, seed).generate();
    let simd = match forced {
        Some(level) => level,
        None => devices::HostCpu::detect().simd,
    };
    println!(
        "bench: {snps} SNPs x {samples} samples, seed {seed}, {trials} trials, \
         {threads} thread(s), SIMD {simd}{}",
        if forced.is_some() { " (forced)" } else { "" }
    );

    let mut measured: Vec<(Version, f64, f64)> = Vec::new();
    let mut bests: Vec<(Version, Candidate)> = Vec::new();
    for &version in &versions {
        let mut cfg = ScanConfig::new(version);
        cfg.threads = threads;
        cfg.simd = forced;
        // warm-up pass (encoding caches, page faults), then best-of-T
        let warm = scan(&data.genotypes, &data.phenotype, &cfg);
        if let Some(best) = warm.best() {
            bests.push((version, best));
        }
        let mut best: Option<(f64, f64)> = None;
        for _ in 0..trials {
            let res = scan(&data.genotypes, &data.phenotype, &cfg);
            let secs = res.elapsed.as_secs_f64();
            let geps = res.giga_elements_per_sec();
            if best.is_none_or(|(s, _)| secs < s) {
                best = Some((secs, geps));
            }
        }
        let (secs, geps) = best.unwrap();
        println!("  {version}: {secs:.4} s -> {geps:.3} G elements/s");
        measured.push((version, secs, geps));
    }

    // All versions are bit-identical by construction; fail the bench (and
    // CI with it) if any tier/version disagrees on the best candidate.
    for pair in bests.windows(2) {
        let ((va, a), (vb, b)) = (&pair[0], &pair[1]);
        if a.triple != b.triple || a.score.to_bits() != b.score.to_bits() {
            return Err(format!(
                "consistency FAILED: {va} found {:?} ({}) but {vb} found {:?} ({})",
                a.triple, a.score, b.triple, b.score
            ));
        }
    }
    if bests.len() > 1 {
        println!("  consistency: all versions agree bit-identically");
    }

    // Cross-triple pair-cache hit rate: one worker drains a rank-order
    // shard plan with a persistent PairPrefixCache (exactly the
    // epi-server inner loop), then the merged result is checked against
    // the monolithic scans above.
    let ds = bitgenome::SplitDataset::encode(&data.genotypes, &data.phenotype);
    let mut cfg5 = ScanConfig::new(Version::V5);
    cfg5.simd = forced;
    let plan = ShardPlan::triples(snps, shards);
    let mut cache = epi_core::prefixcache::PairPrefixCache::new(cfg5.effective_simd());
    let shard_start = std::time::Instant::now();
    let mut merged = epi_core::result::TopK::new(1);
    for range in plan.ranges() {
        merged.merge(epi_core::shard::scan_shard_split_cached(
            &ds, &cfg5, range, &mut cache,
        ));
    }
    let shard_secs = shard_start.elapsed().as_secs_f64();
    let (hits, misses, hit_rate) = (cache.hits(), cache.misses(), cache.hit_rate());
    println!(
        "  pair cache over {shards} rank-order shards: {hits} hits / {misses} misses \
         -> {:.1}% hit rate ({shard_secs:.4} s)",
        hit_rate * 100.0
    );
    if let (Some(shard_best), Some(&(_, scan_best))) = (merged.into_sorted().first(), bests.last())
    {
        if shard_best.triple != scan_best.triple
            || shard_best.score.to_bits() != scan_best.score.to_bits()
        {
            return Err("consistency FAILED: cached shard scan differs from monolithic".into());
        }
    }

    // Adaptive cross-pair cache budget: what the hierarchy detectors saw
    // and the budget the blocked V5 kernel derives from it.
    let l2 = devices::detect_l2();
    let l3 = devices::detect_l3();
    let budget = BlockParams::with_detected_budget();
    println!(
        "  cross-pair budget: {:.1} MiB (L2 {}, L3 {}, fixed floor 4 MiB)",
        budget as f64 / (1 << 20) as f64,
        l2.map(|c| format!("{} KiB/{}cpu", c.geom.size_bytes >> 10, c.shared_cpus))
            .unwrap_or_else(|| "undetected".into()),
        l3.map(|c| format!("{} KiB/{}cpu", c.geom.size_bytes >> 10, c.shared_cpus))
            .unwrap_or_else(|| "undetected".into()),
    );

    // Deep-prefix fill microbenchmark: the depth-≥3 k-way fill
    // (fill_prefix_cache) per available tier, against the same buffers.
    // The SIMD tiers must keep pace with — never fall behind — the
    // scalar fill, or the k-way deep levels would drag the whole cache.
    // at least 512 words per stream: enough work per pass for stable
    // timing even on the small CI smoke datasets
    let prefix_fill = bench_prefix_fill(samples.div_ceil(64).max(512));
    for (level, secs) in &prefix_fill {
        let scalar = prefix_fill[0].1;
        println!(
            "  prefix fill [{level}]: {:.2} ns/word ({:.2}x scalar)",
            secs,
            if *secs > 0.0 { scalar / secs } else { 0.0 }
        );
    }

    // Parallel scaling sweep: the blocked V5 scan under both schedulers
    // (pre-locality chunk-1 vs run-aware claiming) at each worker count,
    // with pool-aggregated cross-pair and prefix-cache hit rates, plus
    // the analytic model's predictions for comparison. Worker counts
    // beyond the host's cores are run anyway (deliberately
    // oversubscribed) — that is precisely the regime where scheduler
    // locality shows, and it keeps the sweep meaningful on small CI
    // boxes. The sweep runs on its own, wider sample dimension
    // (--scale-samples, default 256 Ki samples): tasks must be
    // comparable to an OS timeslice for worker interleaving — and with
    // it the chunk-1 cache collapse — to be physically observable even
    // when cores are scarce; on tiny tasks a single timeslice covers
    // whole runs and every scheduler looks sequential.
    let scale_counts = scale_thread_counts(args)?;
    let scale_samples = opt_usize(args, "--scale-samples", samples.max(256 * 1024))?.max(64);
    let scale_data_owned;
    let scale_data: &Dataset = if scale_samples == samples {
        &data
    } else {
        scale_data_owned = DatasetSpec::noise(snps, scale_samples, seed).generate();
        &scale_data_owned
    };
    println!(
        "  scaling sweep: {snps} SNPs x {scale_samples} samples, workers {scale_counts:?}, \
         chunk-1 vs run-aware"
    );
    let sweep = bench_scaling(scale_data, forced, trials, shards, &scale_counts)?;
    let nb = {
        let cfg5 = {
            let mut c = ScanConfig::new(Version::V5);
            c.simd = forced;
            c
        };
        snps.div_ceil(cfg5.effective_block().bs)
    };
    let model: Vec<epi_core::costs::V5ParallelModel> = scale_counts
        .iter()
        .map(|&w| {
            epi_core::costs::VersionCosts::v5_parallel(
                nb,
                w,
                devices::detect_l2(),
                devices::detect_l3(),
            )
        })
        .collect();
    for (row_ra, (row_c1, m)) in sweep.run_aware.iter().zip(sweep.chunk1.iter().zip(&model)) {
        println!(
            "  scaling @{} worker(s): run-aware {:.3} GEPS (eff {:.2}, xpair {:.0}%/{:.0}% model) \
             | chunk-1 {:.3} GEPS (xpair {:.0}%/{:.0}% model)",
            row_ra.workers,
            row_ra.geps,
            row_ra.efficiency,
            row_ra.cross_pair_hit_rate * 100.0,
            m.hit_rate_run_aware * 100.0,
            row_c1.geps,
            row_c1.cross_pair_hit_rate * 100.0,
            m.hit_rate_chunk1 * 100.0,
        );
    }
    if let (Some(ra), Some(c1)) = (sweep.run_aware.last(), sweep.chunk1.last()) {
        println!(
            "  scaling verdict @{} worker(s): run-aware {:.3} GEPS vs chunk-1 {:.3} GEPS ({:+.1}%)",
            ra.workers,
            ra.geps,
            c1.geps,
            (ra.geps / c1.geps - 1.0) * 100.0
        );
    }

    // Federation block: the same workload federated over loopback fleets
    // of 1, 2 and 4 in-process servers, plus one forced-straggler run to
    // measure steal latency (decision -> resubmission ack).
    let fed = bench_federation(&data, snps, samples, trials.min(3), shards)?;
    for row in &fed.rows {
        println!(
            "  federation @{} node(s): {:.4} s -> {:.3} G elements/s ({} steal(s))",
            row.nodes, row.best_seconds, row.geps, row.steals
        );
    }
    match fed.steal_latency_ms {
        Some(ms) => println!("  federation steal latency (forced straggler): {ms:.1} ms"),
        None => println!("  federation steal latency: no steal occurred (timing-dependent)"),
    }

    // Recovery block (PR 7): what the robustness machinery costs —
    // dataset-hash verification, crash-resume vs a fresh run, and the
    // probation-probe re-admission latency after a node restart.
    let rec = bench_recovery(&data, shards)?;
    println!(
        "  federation recovery: hash-verify {:.2} ms, fresh {:.3} s vs crash+resume {:.3} s \
         ({} shard(s) adopted, not rescanned)",
        rec.hash_verify_ms, rec.fresh_seconds, rec.resume_seconds, rec.resumed_merged
    );
    match rec.readmission_ms {
        Some(ms) => println!("  federation re-admission latency (killed node): {ms:.1} ms"),
        None => println!("  federation re-admission latency: node never probed back in time"),
    }

    let geps_of = |v: Version| {
        measured
            .iter()
            .find(|(mv, _, _)| *mv == v)
            .map(|&(_, _, g)| g)
    };
    let speedup = match (geps_of(Version::V5), geps_of(Version::V4)) {
        (Some(v5), Some(v4)) if v4 > 0.0 => {
            let s = v5 / v4;
            println!("  V5 / V4 speedup: {s:.2}x");
            Some(s)
        }
        _ => None,
    };

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"snps\": {snps},\n  \"samples\": {samples},\n  \"seed\": {seed},\n  \
         \"trials\": {trials},\n  \"threads\": {threads},\n  \"simd\": \"{simd}\",\n"
    ));
    json.push_str("  \"giga_elements_per_sec\": {\n");
    for (i, (v, secs, geps)) in measured.iter().enumerate() {
        let comma = if i + 1 < measured.len() { "," } else { "" };
        json.push_str(&format!(
            "    \"{}\": {{\"best_seconds\": {secs:.6}, \"geps\": {geps:.4}}}{comma}\n",
            v.name()
        ));
    }
    json.push_str("  }");
    if let Some(s) = speedup {
        json.push_str(&format!(",\n  \"speedup_v5_over_v4\": {s:.4}"));
    }
    json.push_str(&format!(
        ",\n  \"pair_cache\": {{\"shards\": {shards}, \"hits\": {hits}, \
         \"misses\": {misses}, \"hit_rate\": {hit_rate:.4}, \
         \"sharded_seconds\": {shard_secs:.6}}}"
    ));
    json.push_str(&format!(
        ",\n  \"cache_budget\": {{\"l2_bytes\": {}, \"l2_shared_cpus\": {}, \
         \"l3_bytes\": {}, \"l3_shared_cpus\": {}, \"budget_bytes\": {budget}, \
         \"fixed_floor_bytes\": {}}}",
        l2.map(|c| c.geom.size_bytes).unwrap_or(0),
        l2.map(|c| c.shared_cpus).unwrap_or(0),
        l3.map(|c| c.geom.size_bytes).unwrap_or(0),
        l3.map(|c| c.shared_cpus).unwrap_or(0),
        epi_core::block::CROSS_PAIR_CACHE_BUDGET,
    ));
    json.push_str(",\n  \"prefix_fill_ns_per_word\": {");
    for (i, (level, ns)) in prefix_fill.iter().enumerate() {
        let comma = if i + 1 < prefix_fill.len() { "," } else { "" };
        json.push_str(&format!("\n    \"{}\": {ns:.4}{comma}", level.token()));
    }
    json.push_str("\n  }");
    // the scaling block: measured per-worker-count rows per scheduler,
    // plus the analytic model the measurements validate
    json.push_str(&format!(
        ",\n  \"scaling\": {{\n    \"scale_samples\": {scale_samples},\n    \"thread_counts\": ["
    ));
    json.push_str(
        &scale_counts
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(", "),
    );
    json.push_str("],\n    \"chunk1\": ");
    json.push_str(&scaling_rows_json(&sweep.chunk1));
    json.push_str(",\n    \"run_aware\": ");
    json.push_str(&scaling_rows_json(&sweep.run_aware));
    json.push_str(",\n    \"model\": [");
    for (i, m) in model.iter().enumerate() {
        json.push_str(&format!(
            "\n      {{\"threads\": {}, \"per_worker_budget_bytes\": {}, \
             \"mean_claim_run_len\": {:.4}, \"hit_rate_run_aware\": {:.4}, \
             \"hit_rate_chunk1\": {:.4}}}{}",
            m.workers,
            m.per_worker_budget,
            m.mean_claim_run_len,
            m.hit_rate_run_aware,
            m.hit_rate_chunk1,
            if i + 1 < model.len() { "," } else { "" }
        ));
    }
    json.push_str("\n    ]\n  }");
    // the federation block: loopback fleet throughput + steal latency
    json.push_str(&format!(
        ",\n  \"federation\": {{\n    \"shards\": {shards},\n    \"rows\": ["
    ));
    for (i, r) in fed.rows.iter().enumerate() {
        json.push_str(&format!(
            "\n      {{\"nodes\": {}, \"best_seconds\": {:.6}, \"geps\": {:.4}, \
             \"steals\": {}}}{}",
            r.nodes,
            r.best_seconds,
            r.geps,
            r.steals,
            if i + 1 < fed.rows.len() { "," } else { "" }
        ));
    }
    json.push_str("\n    ],\n    \"steal_latency_ms\": ");
    match fed.steal_latency_ms {
        Some(ms) => json.push_str(&format!("{ms:.3}")),
        None => json.push_str("null"),
    }
    json.push_str("\n  }");
    // the recovery block: robustness-machinery cost and latency figures
    json.push_str(&format!(
        ",\n  \"federation_recovery\": {{\"hash_verify_ms\": {:.4}, \
         \"fresh_seconds\": {:.6}, \"resume_seconds\": {:.6}, \
         \"resumed_merged\": {}, \"readmission_ms\": {}}}",
        rec.hash_verify_ms,
        rec.fresh_seconds,
        rec.resume_seconds,
        rec.resumed_merged,
        match rec.readmission_ms {
            Some(ms) => format!("{ms:.3}"),
            None => "null".into(),
        }
    ));
    json.push_str("\n}\n");
    std::fs::write(out, json).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("wrote {out}");
    Ok(())
}

/// One measured point of the scaling sweep.
struct ScaleRow {
    workers: usize,
    best_seconds: f64,
    geps: f64,
    /// Per-worker GEPS relative to the sweep's lowest worker count:
    /// `(geps / workers) / (geps_base / workers_base)` — 1.0 is perfect
    /// scaling from the base row (the base is `workers = 1` under the
    /// default counts).
    efficiency: f64,
    /// Pool-aggregated V5 block-pair cache rates (blocked path).
    cross_pair_hit_rate: f64,
    cross_pair_hit_min: f64,
    cross_pair_hit_max: f64,
    /// Pool-aggregated pair-prefix cache rate (rank-order sharded path).
    prefix_hit_rate: f64,
}

/// Measured scaling of both schedulers.
struct ScalingSweep {
    chunk1: Vec<ScaleRow>,
    run_aware: Vec<ScaleRow>,
}

/// Worker counts of the scaling sweep: `--scale-threads a,b,c` or the
/// default `1, 2, 4, …` powers of two up to the core count (always at
/// least {1, 2, 4} so the sweep says something even on tiny hosts).
fn scale_thread_counts(args: &[String]) -> Result<Vec<usize>, String> {
    if let Some(list) = opt_value(args, "--scale-threads") {
        let counts: Result<Vec<usize>, _> = list.split(',').map(str::parse).collect();
        let counts =
            counts.map_err(|_| format!("--scale-threads expects numbers, got {list:?}"))?;
        if counts.is_empty() || counts.contains(&0) {
            return Err("--scale-threads needs positive worker counts".into());
        }
        return Ok(counts);
    }
    let ncores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut counts = vec![1usize, 2, 4];
    let mut w = 8;
    while w <= ncores {
        counts.push(w);
        w *= 2;
    }
    counts.push(ncores);
    counts.sort_unstable();
    counts.dedup();
    Ok(counts)
}

/// Run the blocked V5 scan (and one rank-order sharded pass) under both
/// schedulers at each worker count, checking that every configuration
/// reproduces the single-worker result bit-identically.
///
/// Measurement methodology: the two schedulers are *interleaved* within
/// each trial round (chunk-1, then run-aware, repeat), so slow drift on
/// a shared box — thermal throttling, a noisy neighbour — biases neither
/// side; each cell reports its best round.
fn bench_scaling(
    data: &Dataset,
    forced: Option<bitgenome::SimdLevel>,
    trials: usize,
    shards: u64,
    counts: &[usize],
) -> Result<ScalingSweep, String> {
    use epi_core::scan::scan_split_with_workers;
    use epi_core::shard::scan_sharded_with_workers;

    let ds = bitgenome::SplitDataset::encode(&data.genotypes, &data.phenotype);
    let mut sweep = ScalingSweep {
        chunk1: Vec::new(),
        run_aware: Vec::new(),
    };
    let schedulers = [Scheduler::PoolChunk1, Scheduler::Pool];
    let mut reference: Option<Candidate> = None;
    for &w in counts {
        let mut best = [None::<(f64, f64)>; 2];
        let mut stats = [
            epi_core::PoolCacheStats::default(),
            epi_core::PoolCacheStats::default(),
        ];
        for _ in 0..trials {
            for (si, &scheduler) in schedulers.iter().enumerate() {
                let mut cfg = ScanConfig::new(Version::V5);
                cfg.simd = forced;
                cfg.scheduler = scheduler;
                let (res, s) = scan_split_with_workers(&ds, &cfg, w);
                let secs = res.elapsed.as_secs_f64();
                if best[si].is_none_or(|(b, _)| secs < b) {
                    best[si] = Some((secs, res.giga_elements_per_sec()));
                }
                stats[si] = s.expect("V5 reports cross-pair stats");
                // every (scheduler, workers) cell must agree bit-identically
                match (&reference, res.best()) {
                    (None, c) => reference = c,
                    (Some(want), Some(got))
                        if want.triple != got.triple
                            || want.score.to_bits() != got.score.to_bits() =>
                    {
                        return Err(format!(
                            "scaling consistency FAILED: {scheduler:?} at {w} workers found \
                             {:?} ({}) instead of {:?} ({})",
                            got.triple, got.score, want.triple, want.score
                        ));
                    }
                    _ => {}
                }
            }
        }
        for (si, &scheduler) in schedulers.iter().enumerate() {
            let (best_seconds, geps) = best[si].expect("at least one trial");
            let mut cfg = ScanConfig::new(Version::V5);
            cfg.simd = forced;
            cfg.scheduler = scheduler;
            let (_, prefix_stats) =
                scan_sharded_with_workers(&data.genotypes, &data.phenotype, &cfg, shards, w);
            let rows = match scheduler {
                Scheduler::Pool => &mut sweep.run_aware,
                _ => &mut sweep.chunk1,
            };
            rows.push(ScaleRow {
                workers: w,
                best_seconds,
                geps,
                efficiency: 0.0, // filled below once the w = 1 base is known
                cross_pair_hit_rate: stats[si].hit_rate(),
                cross_pair_hit_min: stats[si].min_hit_rate(),
                cross_pair_hit_max: stats[si].max_hit_rate(),
                prefix_hit_rate: prefix_stats.hit_rate(),
            });
        }
    }
    // Efficiency against the lowest measured worker count (per-worker
    // GEPS relative to the base's per-worker GEPS), so a sweep without a
    // workers = 1 row still reports meaningful numbers.
    for rows in [&mut sweep.chunk1, &mut sweep.run_aware] {
        let base = rows
            .iter()
            .min_by_key(|r| r.workers)
            .map(|r| (r.geps, r.workers as f64));
        for r in rows.iter_mut() {
            r.efficiency = match base {
                Some((bg, bw)) if bg > 0.0 => (r.geps / r.workers as f64) / (bg / bw),
                _ => 0.0,
            };
        }
    }
    Ok(sweep)
}

/// One measured fleet size of the federation benchmark.
struct FederationRow {
    nodes: usize,
    best_seconds: f64,
    geps: f64,
    /// Steals observed across all trials at this fleet size (expected 0
    /// on a quiet loopback fleet; nonzero means the patience threshold
    /// fired, which is interesting in itself).
    steals: usize,
}

/// Measured federation benchmark: per-fleet-size throughput plus one
/// forced-straggler steal-latency measurement.
struct FederationBench {
    rows: Vec<FederationRow>,
    /// Mean decision-to-resubmission-ack latency over the steals of the
    /// forced-straggler run; `None` when no steal fired (the window is
    /// timing-dependent — a very fast host can drain the backlog before
    /// the patience threshold trips).
    steal_latency_ms: Option<f64>,
}

/// Federate the bench workload over in-process loopback fleets of 1, 2
/// and 4 servers (best-of-`trials` each), then force a straggler — one
/// node pre-loaded with a throttled background job — to measure steal
/// latency. Every run's merged top-1 is checked against the others
/// bit-identically via the coordinator's own per-shard merge.
fn bench_federation(
    data: &Dataset,
    snps: usize,
    samples: usize,
    trials: usize,
    shards: u64,
) -> Result<FederationBench, String> {
    // the fleet loads the dataset from disk like any real deployment
    let path = std::env::temp_dir().join(format!("epi3_bench_fed_{}.epi3", std::process::id()));
    datagen::io::save_binary(&path, data).map_err(|e| format!("cannot write {path:?}: {e}"))?;
    let path_s = path.to_string_lossy().into_owned();
    let elements = epi_core::combin::num_elements(snps, samples) as f64;

    let fed_config = |addrs: &[String]| {
        let mut cfg = FederationConfig::new(addrs.to_vec());
        cfg.poll_cap = Duration::from_millis(10); // tighten for short runs
        cfg
    };
    let run = |addrs: &[String], spec: &JobSpec| -> Result<FederationReport, String> {
        federate(spec, &fed_config(addrs))
    };

    let mut rows = Vec::new();
    let mut reference: Option<Candidate> = None;
    for nodes in [1usize, 2, 4] {
        let mut best = f64::INFINITY;
        let mut steals = 0;
        for _ in 0..trials.max(1) {
            let (addrs, handles) = spawn_loopback_fleet(nodes, 0, None)?;
            let mut spec = JobSpec::new(&path_s);
            spec.shards = shards;
            spec.top_k = 1;
            let outcome = run(&addrs, &spec);
            for h in handles {
                h.shutdown();
            }
            let report = outcome?;
            best = best.min(report.elapsed.as_secs_f64());
            steals += report.steals.len();
            match (&reference, report.top.first()) {
                (None, c) => reference = c.cloned(),
                (Some(want), Some(got))
                    if want.triple != got.triple || want.score.to_bits() != got.score.to_bits() =>
                {
                    return Err(format!(
                        "federation consistency FAILED: {nodes} node(s) found {:?} ({}) \
                         instead of {:?} ({})",
                        got.triple, got.score, want.triple, want.score
                    ));
                }
                _ => {}
            }
        }
        rows.push(FederationRow {
            nodes,
            best_seconds: best,
            geps: elements / 1e9 / best,
            steals,
        });
    }

    // Forced straggler: node 1 first chews through a throttled background
    // job (the engine's shard queue is FIFO across jobs, so the
    // federation sub-job waits behind it), node 0 drains its own half
    // quickly and steals the backlog once its patience runs out.
    let (addrs, handles) = spawn_loopback_fleet(2, 0, None)?;
    let mut bg = JobSpec::new(&path_s);
    bg.shards = 12;
    bg.top_k = 1;
    bg.throttle_ms = 30;
    Client::connect(addrs[1].as_str())
        .map_err(|e| format!("connect to straggler failed: {e}"))?
        .submit(&bg)
        .map_err(|e| format!("background job submit failed: {e}"))?;
    let mut spec = JobSpec::new(&path_s);
    spec.shards = 16;
    spec.top_k = 1;
    spec.throttle_ms = 10;
    let mut cfg = fed_config(&addrs);
    cfg.steal_patience = Duration::from_millis(50);
    let outcome = federate(&spec, &cfg);
    for h in handles {
        h.shutdown();
    }
    let report = outcome?;
    let lat: Vec<f64> = report
        .steals
        .iter()
        .map(|s| s.latency.as_secs_f64() * 1e3)
        .collect();
    let steal_latency_ms = (!lat.is_empty()).then(|| lat.iter().sum::<f64>() / lat.len() as f64);

    let _ = std::fs::remove_file(&path);
    Ok(FederationBench {
        rows,
        steal_latency_ms,
    })
}

/// Measured cost and latency of the federation robustness machinery.
struct RecoveryBench {
    /// One dataset content hash over the bench cohort — the per-SUBMIT
    /// integrity-verification overhead.
    hash_verify_ms: f64,
    /// Wall clock of an uninterrupted 2-node federated run.
    fresh_seconds: f64,
    /// Wall clock of the resumed half of a crashed run (coordinator
    /// killed after half the shards merged, then `resume_from_spool`).
    resume_seconds: f64,
    /// Shards the resume adopted from the checkpoint instead of
    /// rescanning.
    resumed_merged: u64,
    /// Death-to-readmission span of a killed-and-restarted node; `None`
    /// when the scan outran the restart (timing-dependent).
    readmission_ms: Option<f64>,
}

/// Benchmark the PR 7 robustness machinery: hash-verify overhead,
/// crash-resume wall-clock against a fresh run, and probation
/// re-admission latency after a node kill/restart.
fn bench_recovery(data: &Dataset, shards: u64) -> Result<RecoveryBench, String> {
    use std::time::Instant;

    let t = Instant::now();
    let digest = epi_core::integrity::dataset_hash(&data.genotypes, &data.phenotype);
    let hash_verify_ms = t.elapsed().as_secs_f64() * 1e3;
    std::hint::black_box(digest);

    let dir = std::env::temp_dir();
    let path = dir.join(format!("epi3_bench_rec_{}.epi3", std::process::id()));
    datagen::io::save_binary(&path, data).map_err(|e| format!("cannot write {path:?}: {e}"))?;
    let path_s = path.to_string_lossy().into_owned();
    let spool = dir.join(format!("epi3_bench_rec_{}.fedckpt", std::process::id()));
    let _ = std::fs::remove_file(&spool);

    let base_cfg = |addrs: &[String]| {
        let mut cfg = FederationConfig::new(addrs.to_vec());
        cfg.poll_cap = Duration::from_millis(10);
        cfg.probe_floor = Duration::from_millis(5);
        cfg.probe_cap = Duration::from_millis(50);
        cfg
    };
    let mut spec = JobSpec::new(&path_s);
    spec.shards = shards;
    spec.top_k = 1;

    // fresh run: the baseline the resume is compared against
    let (addrs, handles) = spawn_loopback_fleet(2, 0, None)?;
    let fresh = federate(&spec, &base_cfg(&addrs));
    for h in handles {
        h.shutdown();
    }
    let fresh_seconds = fresh?.elapsed.as_secs_f64();

    // crash after half the merges, then resume against the SAME fleet —
    // the nodes keep scanning while the coordinator is gone, which is
    // exactly the deployment story
    let (addrs, handles) = spawn_loopback_fleet(2, 0, None)?;
    let mut cfg = base_cfg(&addrs);
    cfg.spool_path = Some(spool.clone());
    cfg.fail_after_merges = Some((shards / 2).max(1));
    let crash = federate(&spec, &cfg);
    cfg.fail_after_merges = None;
    let resumed = if crash.is_err() && spool.exists() {
        resume_from_spool(&spool, &cfg)
    } else {
        // the whole scan merged inside one tick — nothing to resume;
        // fall back to a fresh run so the row is still comparable
        federate(&spec, &cfg)
    };
    for h in handles {
        h.shutdown();
    }
    let resumed = resumed?;
    let (resume_seconds, resumed_merged) = (resumed.elapsed.as_secs_f64(), resumed.resumed_merged);

    // kill node 1 mid-scan, restart it, and time the re-admission
    let (addrs, mut handles) = spawn_loopback_fleet(2, 0, None)?;
    let victim_addr = addrs[1].clone();
    let reviver = std::thread::spawn(move || {
        let deadline = Instant::now() + Duration::from_secs(30);
        while Instant::now() < deadline {
            if let Ok(mut c) = Client::connect(victim_addr.as_str()) {
                let running = c.jobs().map(|jobs| jobs.iter().any(|j| j.in_flight > 0));
                if matches!(running, Ok(true)) {
                    let _ = c.shutdown();
                    break;
                }
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        std::thread::sleep(Duration::from_millis(50));
        Server::bind(
            victim_addr.as_str(),
            EngineConfig {
                workers: 0,
                spool_dir: None,
                default_simd: None,
                dataset_root: None,
                ..EngineConfig::default()
            },
        )
        .ok()
        .map(|s| s.spawn())
    });
    let mut spec = spec.clone();
    spec.throttle_ms = 10; // stretch the scan past the restart window
    let outcome = federate(&spec, &base_cfg(&addrs));
    let revived = reviver.join().map_err(|_| "reviver thread panicked")?;
    handles.remove(1); // first incarnation shut itself down
    for h in handles {
        h.shutdown();
    }
    if let Some(h) = revived {
        h.shutdown();
    }
    let readmission_ms = outcome?
        .readmissions
        .first()
        .map(|r| r.downtime.as_secs_f64() * 1e3);

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&spool);
    let _ = std::fs::remove_file(spool.with_extension("fedckpt.prev"));
    Ok(RecoveryBench {
        hash_verify_ms,
        fresh_seconds,
        resume_seconds,
        resumed_merged,
        readmission_ms,
    })
}

/// Render one scheduler's sweep rows as a JSON array.
fn scaling_rows_json(rows: &[ScaleRow]) -> String {
    let mut out = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "\n      {{\"threads\": {}, \"best_seconds\": {:.6}, \"geps\": {:.4}, \
             \"efficiency\": {:.4}, \"cross_pair_hit_rate\": {:.4}, \
             \"cross_pair_hit_min\": {:.4}, \"cross_pair_hit_max\": {:.4}, \
             \"prefix_hit_rate\": {:.4}}}{}",
            r.workers,
            r.best_seconds,
            r.geps,
            r.efficiency,
            r.cross_pair_hit_rate,
            r.cross_pair_hit_min,
            r.cross_pair_hit_max,
            r.prefix_hit_rate,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("\n    ]");
    out
}

/// Time the deep-prefix fill (`epi_core::simd::fill_prefix_cache`) on
/// every available tier over `words`-word streams: best-of-5 passes of
/// 3 × 9 parent fills (one depth-3 rebuild of an order-4 prefix cache),
/// reported in nanoseconds per filled word. Scalar first.
fn bench_prefix_fill(words: usize) -> Vec<(bitgenome::SimdLevel, f64)> {
    use epi_core::simd::fill_prefix_cache;
    const PARENTS: usize = 9; // depth-3 rebuild: 9 parents x 3 children
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state
    };
    let parents: Vec<u64> = (0..PARENTS * words).map(|_| next()).collect();
    let p0: Vec<u64> = (0..words).map(|_| next()).collect();
    let p1: Vec<u64> = (0..words).map(|_| next()).collect();
    let mut out = vec![0u64; 3 * words];
    let mut sink = 0u32;
    let mut results = Vec::new();
    for level in bitgenome::SimdLevel::available() {
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let start = std::time::Instant::now();
            for s in 0..PARENTS {
                let mut counts = [0u32; 3];
                fill_prefix_cache(
                    level,
                    &parents[s * words..(s + 1) * words],
                    &p0,
                    &p1,
                    &mut out,
                    &mut counts,
                );
                sink = sink.wrapping_add(counts[0]);
            }
            let secs = start.elapsed().as_secs_f64();
            best = best.min(secs * 1e9 / (PARENTS * words) as f64);
        }
        results.push((level, best));
    }
    std::hint::black_box(sink);
    results
}

fn cmd_devices() -> Result<(), String> {
    println!("Table I CPUs:");
    for d in devices::CpuDevice::table1() {
        println!(
            "  {}: {} ({:?}, {:.1} GHz, {} cores, {}-bit{})",
            d.id,
            d.name,
            d.arch,
            d.base_ghz,
            d.cores,
            d.vector_bits,
            if d.vector_popcnt { ", VPOPCNT" } else { "" }
        );
    }
    println!("Table II GPUs:");
    for d in devices::GpuDevice::table2() {
        println!(
            "  {}: {} ({}, {:.3} GHz, {} CUs, {} stream cores, {} POPCNT/CU)",
            d.id, d.name, d.arch, d.boost_ghz, d.compute_units, d.stream_cores, d.popcnt_per_cu
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn option_parsing() {
        let args = s(&["file.epi3", "--top", "7", "--mi"]);
        assert_eq!(positional(&args), Some("file.epi3"));
        assert_eq!(opt_usize(&args, "--top", 1).unwrap(), 7);
        assert_eq!(opt_usize(&args, "--threads", 3).unwrap(), 3);
        assert!(opt_flag(&args, "--mi"));
        assert!(!opt_flag(&args, "--balance"));
    }

    #[test]
    fn bad_number_is_an_error() {
        let args = s(&["--top", "seven"]);
        assert!(opt_usize(&args, "--top", 1).is_err());
    }

    #[test]
    fn unknown_command_is_an_error() {
        assert!(run(&s(&["frobnicate"])).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn gen_scan_roundtrip() {
        let dir = std::env::temp_dir();
        let path = dir.join("epi3_cli_test.epi3");
        let path_s = path.to_str().unwrap();
        run(&s(&[
            "gen",
            "--snps",
            "20",
            "--samples",
            "128",
            "--plant",
            "2,9,15",
            "--out",
            path_s,
        ]))
        .unwrap();
        run(&s(&["scan", path_s, "--top", "3"])).unwrap();
        run(&s(&["pairs", path_s])).unwrap();
        run(&s(&["summary", path_s])).unwrap();
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn devices_subcommand_runs() {
        run(&s(&["devices"])).unwrap();
    }

    #[test]
    fn version_parsing_covers_v5() {
        assert_eq!(parse_version_name("v5").unwrap(), Version::V5);
        assert_eq!(parse_version_name("V5").unwrap(), Version::V5);
        assert!(parse_version_name("v6").is_err());
        // default is the fastest bit-identical kernel
        assert_eq!(parse_version(&s(&["x.epi3"])).unwrap(), Version::V5);
    }

    #[test]
    fn bench_subcommand_writes_json() {
        let path = std::env::temp_dir().join("epi3_bench_test.json");
        let path_s = path.to_str().unwrap().to_string();
        run(&s(&[
            "bench",
            "--snps",
            "16",
            "--samples",
            "128",
            "--trials",
            "1",
            // keep the sweep tiny: debug-mode tests cannot afford the
            // timeslice-scale default sample dimension
            "--scale-samples",
            "2048",
            "--scale-threads",
            "1,2",
            "--out",
            &path_s,
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"V5\""));
        assert!(text.contains("speedup_v5_over_v4"));
        assert!(text.contains("\"pair_cache\""));
        assert!(text.contains("\"hit_rate\""));
        // adaptive-budget + deep-prefix fill reporting (PR 4)
        assert!(text.contains("\"cache_budget\""));
        assert!(text.contains("\"budget_bytes\""));
        assert!(text.contains("\"prefix_fill_ns_per_word\""));
        assert!(text.contains("\"scalar\""));
        // parallel scaling block (PR 5): both schedulers + the model
        assert!(text.contains("\"scaling\""));
        assert!(text.contains("\"thread_counts\""));
        assert!(text.contains("\"chunk1\""));
        assert!(text.contains("\"run_aware\""));
        assert!(text.contains("\"cross_pair_hit_rate\""));
        assert!(text.contains("\"model\""));
        // federation block (PR 6): loopback fleet rows + steal latency
        assert!(text.contains("\"federation\""));
        assert!(text.contains("\"nodes\": 1"));
        assert!(text.contains("\"nodes\": 2"));
        assert!(text.contains("\"nodes\": 4"));
        assert!(text.contains("\"steal_latency_ms\""));
        // recovery block (PR 7): robustness-machinery cost figures
        assert!(text.contains("\"federation_recovery\""));
        assert!(text.contains("\"hash_verify_ms\""));
        assert!(text.contains("\"fresh_seconds\""));
        assert!(text.contains("\"resume_seconds\""));
        assert!(text.contains("\"resumed_merged\""));
        assert!(text.contains("\"readmission_ms\""));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn federate_crash_and_resume_roundtrip() {
        let dir = std::env::temp_dir();
        let path = dir.join("epi3_cli_resume_test.epi3");
        let path_s = path.to_str().unwrap();
        let spool = dir.join("epi3_cli_resume_test.fedckpt");
        let spool_s = spool.to_str().unwrap();
        let _ = std::fs::remove_file(&spool);
        run(&s(&[
            "gen",
            "--snps",
            "18",
            "--samples",
            "128",
            "--plant",
            "2,7,11",
            "--out",
            path_s,
        ]))
        .unwrap();
        // coordinator "killed" (injected) after 2 merges, spool left behind
        let err = run(&s(&[
            "federate",
            path_s,
            "--spawn",
            "2",
            "--shards",
            "8",
            "--top",
            "4",
            "--throttle-ms",
            "5",
            "--spool",
            spool_s,
            "--fail-after-merges",
            "2",
        ]))
        .expect_err("injected crash must abort the run");
        assert!(err.contains("injected coordinator crash"), "{err}");
        assert!(spool.exists(), "crash must leave the spooled checkpoint");
        // resume on a fresh fleet; --verify proves the merged result is
        // still bit-identical to the monolithic scan
        run(&s(&[
            "federate", path_s, "--resume", spool_s, "--spawn", "2", "--top", "4", "--verify",
        ]))
        .unwrap();
        // without --resume, the spool argument alone must not resume
        assert!(run(&s(&["federate", "--resume"])).is_err());
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_file(&spool);
        let _ = std::fs::remove_file(dir.join("epi3_cli_resume_test.fedckpt.prev"));
    }

    #[test]
    fn federate_spawns_a_loopback_fleet_and_verifies() {
        let dir = std::env::temp_dir();
        let path = dir.join("epi3_cli_federate_test.epi3");
        let path_s = path.to_str().unwrap();
        run(&s(&[
            "gen",
            "--snps",
            "18",
            "--samples",
            "128",
            "--plant",
            "2,7,11",
            "--out",
            path_s,
        ]))
        .unwrap();
        run(&s(&[
            "federate", path_s, "--spawn", "2", "--shards", "8", "--top", "4", "--verify",
        ]))
        .unwrap();
        // --nodes and --spawn cannot be combined; one of them is required
        assert!(run(&s(&[
            "federate",
            path_s,
            "--spawn",
            "2",
            "--nodes",
            "127.0.0.1:1",
        ]))
        .is_err());
        assert!(run(&s(&["federate", path_s])).is_err());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn scale_thread_counts_parsing() {
        assert_eq!(
            scale_thread_counts(&s(&["--scale-threads", "1,3,9"])).unwrap(),
            vec![1, 3, 9]
        );
        assert!(scale_thread_counts(&s(&["--scale-threads", "1,0"])).is_err());
        assert!(scale_thread_counts(&s(&["--scale-threads", "two"])).is_err());
        // default always carries at least three counts, starting at 1
        let d = scale_thread_counts(&[]).unwrap();
        assert!(d.len() >= 3 && d[0] == 1 && d.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn threads_env_override_applies_when_flag_absent() {
        // flag wins over env; env wins over default; default unified on 0
        let flag = s(&["x.epi3", "--threads", "5"]);
        let bare = s(&["x.epi3"]);
        assert_eq!(
            opt_threads_with(&flag, "--threads", 0, Some("3")).unwrap(),
            5
        );
        assert_eq!(
            opt_threads_with(&bare, "--threads", 0, Some("3")).unwrap(),
            3
        );
        assert_eq!(opt_threads_with(&bare, "--threads", 0, None).unwrap(), 0);
        assert_eq!(
            opt_threads_with(&bare, "--threads", 1, Some("")).unwrap(),
            1
        );
        assert!(opt_threads_with(&bare, "--threads", 0, Some("zebra")).is_err());
        assert!(opt_threads_with(&s(&["--threads", "x"]), "--threads", 0, None).is_err());
    }

    #[test]
    fn scan_and_shards_accept_forced_simd() {
        let dir = std::env::temp_dir();
        let path = dir.join("epi3_cli_simd_test.epi3");
        let path_s = path.to_str().unwrap();
        run(&s(&[
            "gen",
            "--snps",
            "14",
            "--samples",
            "96",
            "--out",
            path_s,
        ]))
        .unwrap();
        run(&s(&["scan", path_s, "--top", "2", "--simd", "scalar"])).unwrap();
        run(&s(&[
            "shards", path_s, "--shards", "4", "--simd", "scalar", "--verify",
        ]))
        .unwrap();
        // unknown tiers fail cleanly
        assert!(run(&s(&["scan", path_s, "--simd", "sse9"])).is_err());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn bench_respects_forced_simd_tier() {
        // A forced tier must run (clamped if unavailable) and still
        // produce bit-identical results — the consistency check inside
        // cmd_bench fails the run otherwise.
        let path = std::env::temp_dir().join("epi3_bench_scalar_test.json");
        let path_s = path.to_str().unwrap().to_string();
        run(&s(&[
            "bench",
            "--snps",
            "14",
            "--samples",
            "96",
            "--trials",
            "1",
            "--scale-samples",
            "2048",
            "--scale-threads",
            "1,2",
            "--simd",
            "scalar",
            "--out",
            &path_s,
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"simd\": \"scalar\""));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn simd_tier_names_parse() {
        use bitgenome::SimdLevel;
        assert_eq!(parse_simd_name("scalar").unwrap(), SimdLevel::Scalar);
        assert_eq!(parse_simd_name("AVX2").unwrap(), SimdLevel::Avx2);
        assert_eq!(parse_simd_name("avx512").unwrap(), SimdLevel::Avx512);
        assert_eq!(
            parse_simd_name("vpopcnt").unwrap(),
            SimdLevel::Avx512Vpopcnt
        );
        assert!(parse_simd_name("sse9").is_err());
    }
}
