//! # threeway-epistasis
//!
//! Exhaustive **three-way gene interaction (epistasis) detection** for
//! modern CPUs and (simulated) GPUs — a full Rust reproduction of
//! *“Unlocking Personalized Healthcare on Modern CPUs/GPUs: Three-way
//! Gene Interaction Study”* (Marques et al., IPDPS 2022).
//!
//! ## Quick start
//!
//! ```
//! use threeway_epistasis::prelude::*;
//!
//! // Generate a synthetic case-control dataset with a planted
//! // three-way interaction on SNPs (3, 7, 11).
//! let spec = DatasetSpec::with_planted_triple(32, 512, [3, 7, 11], 42);
//! let data = spec.generate();
//!
//! // Run the fastest CPU approach (V5: split + blocked + SIMD +
//! // pair-prefix caching; results bit-identical to the paper's V4).
//! let result = detect(&data.genotypes, &data.phenotype);
//! let best = result.best().expect("non-empty scan");
//!
//! // The planted interaction minimises the K2 score.
//! let t = best.triple;
//! assert!(data
//!     .truth
//!     .as_ref()
//!     .unwrap()
//!     .matches(&[t.0 as usize, t.1 as usize, t.2 as usize]));
//! ```
//!
//! ## Crate map
//!
//! | Crate | Role |
//! |-------|------|
//! | [`bitgenome`] | bit-packed genotype layouts (Fig. 1, §IV) |
//! | [`datagen`] | synthetic datasets with planted interactions |
//! | [`epi_core`] | CPU approaches V1–V5, K2 scoring, parallel drivers |
//! | [`devices`] | the paper's 5 CPUs + 9 GPUs as data (Tables I–II) |
//! | [`gpu_sim`] | functional + analytic GPU simulator (§IV-B, Fig. 4) |
//! | [`carm`] | Cache-Aware Roofline Model characterisation (Fig. 2) |
//! | [`baselines`] | MPI3SNP-style and naive comparators (Table III) |
//! | [`epi_server`] | sharded, resumable scan jobs behind a TCP service |
//! | [`epi_coord`] | multi-node federation of one scan across a fleet |

#![forbid(unsafe_code)]

pub use baselines;
pub use bitgenome;
pub use carm;
pub use datagen;
pub use devices;
pub use epi_coord;
pub use epi_core;
pub use epi_server;
pub use gpu_sim;

use bitgenome::{GenotypeMatrix, Phenotype};
use epi_core::scan::{ScanConfig, ScanResult, Version};

/// Common imports for applications.
pub mod prelude {
    pub use crate::{detect, detect_with};
    pub use bitgenome::{GenotypeMatrix, Phenotype};
    pub use datagen::{Dataset, DatasetSpec, GroundTruth, MafModel, PenetranceTable};
    pub use epi_coord::{
        federate, resume_from_spool, ChaosProxy, ChaosSchedule, FederationConfig, FederationReport,
    };
    pub use epi_core::scan::{scan, ObjectiveKind, ScanConfig, ScanResult, Scheduler, Version};
    pub use epi_core::shard::{scan_shard, scan_sharded, ShardPlan, ShardSet};
    pub use epi_core::{BlockParams, Candidate, Triple};
    pub use epi_server::{Client, EngineConfig, JobSpec, JobState, Server};
    pub use gpu_sim::{GpuScan, GpuScanConfig, GpuTimingModel, GpuVersion};
}

/// Run the fastest CPU approach (V5: pair-prefix cached, bit-identical
/// to the paper's V4) with default settings: all cores, dynamic
/// scheduling, K2 objective, top-10 candidates.
pub fn detect(genotypes: &GenotypeMatrix, phenotype: &Phenotype) -> ScanResult {
    let mut cfg = ScanConfig::new(Version::V5);
    cfg.top_k = 10;
    detect_with(genotypes, phenotype, &cfg)
}

/// Run a scan with an explicit configuration.
pub fn detect_with(
    genotypes: &GenotypeMatrix,
    phenotype: &Phenotype,
    cfg: &ScanConfig,
) -> ScanResult {
    epi_core::scan::scan(genotypes, phenotype, cfg)
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_detects_planted_interaction() {
        // 512 samples gives the threshold-model signal a comfortable
        // margin over noise triples for any reasonable RNG stream.
        let spec = DatasetSpec::with_planted_triple(24, 512, [2, 9, 17], 7);
        let data = spec.generate();
        let res = crate::detect(&data.genotypes, &data.phenotype);
        let best = res.best().unwrap();
        let t = best.triple;
        assert!(data
            .truth
            .unwrap()
            .matches(&[t.0 as usize, t.1 as usize, t.2 as usize]));
    }
}
